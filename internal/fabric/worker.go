package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/plan"
	"repro/internal/runner"
)

// WorkerConfig sizes one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name attributes the worker in coordinator stats and logs.
	Name string
	// TrialWorkers caps the shard-internal trial pool; 0 selects one per
	// core.
	TrialWorkers int
	// Poll is the wait between lease polls when no shard is free; 0
	// selects 200ms.
	Poll time.Duration
	// MaxFailures bounds consecutive coordinator errors before the worker
	// gives up (a dead coordinator, a persistently failing upload); 0
	// selects 30.
	MaxFailures int
	// Client substitutes the HTTP client; nil selects a default with sane
	// timeouts.
	Client *http.Client
	// Log, when non-nil, receives one line per worker event.
	Log func(format string, args ...any)
}

func (cfg *WorkerConfig) fill() {
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 30
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
}

// Work is the resumable worker loop: lease a shard, run it through the
// engine under a heartbeat, upload the canonical bytes, repeat — until
// the coordinator reports the sweep done (nil), failed (error), the
// context is cancelled, or the coordinator stays unreachable past the
// failure budget. Losing a lease mid-run is not an error: the worker
// abandons the shard (someone else holds it now) and asks for the next.
func Work(ctx context.Context, cfg WorkerConfig) error {
	cfg.fill()
	if cfg.Coordinator == "" {
		return fmt.Errorf("fabric: worker needs a coordinator URL")
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := postLease(ctx, cfg)
		if err != nil {
			failures++
			if failures >= cfg.MaxFailures {
				return fmt.Errorf("fabric: coordinator unreachable after %d attempts: %w", failures, err)
			}
			sleep(ctx, cfg.Poll)
			continue
		}
		failures = 0
		switch lease.Status {
		case StatusDone:
			cfg.Log("sweep done")
			return nil
		case StatusFailed:
			return fmt.Errorf("fabric: sweep failed: %s", lease.Error)
		case StatusWait:
			sleep(ctx, cfg.Poll)
		case StatusShard:
			if err := runLease(ctx, cfg, lease); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				failures++
				if failures >= cfg.MaxFailures {
					return err
				}
				cfg.Log("shard %s: %v (continuing)", lease.Shard.ID, err)
				sleep(ctx, cfg.Poll)
			}
		default:
			return fmt.Errorf("fabric: coordinator answered unknown lease status %q", lease.Status)
		}
	}
}

// runLease executes one leased shard under a heartbeat and uploads its
// bytes. A lost lease (heartbeat answered 410) cancels the run and
// returns nil — abandonment, not failure.
func runLease(ctx context.Context, cfg WorkerConfig, lease LeaseResponse) error {
	sh := *lease.Shard
	cfg.Log("leased shard %s (%s n=%d trials [%d,%d))", sh.ID, sh.Protocol, sh.N, sh.Lo, sh.Hi)

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var lost bool
	var mu sync.Mutex
	stopHeartbeat := heartbeat(runCtx, cfg, lease, func() {
		mu.Lock()
		lost = true
		mu.Unlock()
		cancelRun()
	})

	canonical, err := RunShard(runCtx, sh, lease.Scenario, cfg.TrialWorkers)
	stopHeartbeat()
	mu.Lock()
	abandoned := lost
	mu.Unlock()
	if err != nil {
		if abandoned && ctx.Err() == nil {
			cfg.Log("shard %s: lease lost, abandoning", sh.ID)
			return nil
		}
		return err
	}

	// The lease may have lapsed during a long trial; upload anyway — late
	// completions with identical bytes are merged idempotently.
	if err := postComplete(ctx, cfg, lease.LeaseID, canonical); err != nil {
		return err
	}
	cfg.Log("shard %s complete (%d records)", sh.ID, sh.Trials())
	return nil
}

// heartbeat renews the lease at TTL/3 until stopped; onLost fires when
// the coordinator answers 410 (the lease lapsed or was superseded).
// Transient network errors are ignored — the run continues and a late
// completion is still acceptable.
func heartbeat(ctx context.Context, cfg WorkerConfig, lease LeaseResponse, onLost func()) (stop func()) {
	interval := time.Duration(lease.TTLMillis) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				code, err := postJSON(hbCtx, cfg.Client, cfg.Coordinator+"/v1/renew", RenewRequest{LeaseID: lease.LeaseID}, nil)
				if err == nil && code == http.StatusGone {
					onLost()
					return
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// RunShard executes one shard's trial range through the engine,
// returning the canonical record bytes — exactly the bytes the
// Experiment's probed path produces for those trials, re-serialized in
// trial order. Seeds are repro.TrialSeed(n, t) as everywhere else, so
// the bytes are a pure function of the shard, whatever worker runs it
// and at whatever parallelism.
func RunShard(ctx context.Context, sh Shard, sc repro.Scenario, workers int) ([]byte, error) {
	p, err := repro.NewProtocol(sh.Protocol)
	if err != nil {
		return nil, err
	}
	if sh.Hi <= sh.Lo {
		return nil, fmt.Errorf("fabric: shard %s has empty trial range [%d,%d)", sh.ID, sh.Lo, sh.Hi)
	}
	col := plan.NewCollector(sh.Lo, sh.Hi)
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ferr := runner.ForEach(ctx, sh.Trials(), func(i int) {
		t := sh.Lo + i
		seed := repro.TrialSeed(sh.N, t)
		// Mirror Experiment.runCell's probed path bit for bit: the
		// recording probe distills the same observables a service or
		// library run records, so shard bytes equal cell-slice bytes.
		rp := &repro.RecordingProbe{}
		if _, err := repro.ProbeTrial(p, sc, sh.N, seed, rp); err != nil {
			fail(err)
			return
		}
		rec := rp.Record()
		rec.Trial = t
		if err := col.Record(rec); err != nil {
			fail(err)
		}
	}, runner.Options{Workers: workers})
	if ferr != nil {
		return nil, ferr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return col.Encode()
}

// postLease asks the coordinator for work.
func postLease(ctx context.Context, cfg WorkerConfig) (LeaseResponse, error) {
	var resp LeaseResponse
	code, err := postJSON(ctx, cfg.Client, cfg.Coordinator+"/v1/lease", LeaseRequest{Worker: cfg.Name}, &resp)
	if err != nil {
		return resp, err
	}
	if code != http.StatusOK {
		return resp, fmt.Errorf("fabric: lease request answered %d", code)
	}
	return resp, nil
}

// postComplete uploads a shard's canonical bytes, gzipped, retrying
// transient failures. A 409 (determinism violation) is terminal.
func postComplete(ctx context.Context, cfg WorkerConfig, leaseID string, canonical []byte) error {
	gz, err := gzipBytes(canonical)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/complete?lease_id=%s", cfg.Coordinator, leaseID)
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(gz))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/gzip")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			sleep(ctx, cfg.Poll)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusConflict:
			return fmt.Errorf("fabric: upload rejected: %s", bytes.TrimSpace(body))
		default:
			lastErr = fmt.Errorf("fabric: upload answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
			sleep(ctx, cfg.Poll)
		}
	}
	return lastErr
}

// postJSON posts v as JSON and decodes a 200 reply into out (when
// non-nil), returning the status code.
func postJSON(ctx context.Context, client *http.Client, url string, v, out any) (int, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	return resp.StatusCode, nil
}

// sleep waits d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
