package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/plan"
	"repro/internal/runner"
)

// ErrCoordinatorUnreachable marks a worker that gave up because the
// coordinator answered nothing — not even an error status — for longer
// than its idle budget. Callers (cmd/fabric) branch on it for a distinct
// exit code: an unreachable coordinator is an operational problem, not a
// sweep failure.
var ErrCoordinatorUnreachable = errors.New("fabric: coordinator unreachable")

// WorkerConfig sizes one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name attributes the worker in coordinator stats and logs.
	Name string
	// TrialWorkers caps the shard-internal trial pool; 0 selects one per
	// core.
	TrialWorkers int
	// Poll is the wait between lease polls when no shard is free; 0
	// selects 200ms.
	Poll time.Duration
	// MaxFailures bounds consecutive shard failures (a persistently
	// failing run or upload) before the worker gives up; 0 selects 30.
	MaxFailures int
	// MaxIdle bounds how long the worker tolerates zero successful
	// coordinator contact before exiting with ErrCoordinatorUnreachable;
	// 0 selects 2 minutes.
	MaxIdle time.Duration
	// Retry is the shared retry/backoff policy for every coordinator
	// call (lease / renew / complete); nil selects chaos.Policy defaults
	// (5 attempts, 50ms base, 2s cap, full jitter).
	Retry *chaos.Policy
	// Chaos, when non-nil, injects the worker's seeded fault plan: its
	// transport faults wrap Client and its crash points fire at
	// worker.leased / worker.ran / worker.uploaded.
	Chaos *chaos.Injector
	// Client substitutes the HTTP client; nil selects a default with sane
	// timeouts.
	Client *http.Client
	// Log, when non-nil, receives one line per worker event.
	Log func(format string, args ...any)
}

func (cfg *WorkerConfig) fill() {
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 30
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = 2 * time.Minute
	}
	if cfg.Retry == nil {
		cfg.Retry = &chaos.Policy{}
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.Chaos != nil {
		cfg.Client = cfg.Chaos.Client(cfg.Client)
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
}

// Work is the resumable worker loop: lease a shard, run it through the
// engine under a heartbeat, upload the canonical bytes, repeat — until
// the coordinator reports the sweep done (nil), failed (error), the
// context is cancelled, or the coordinator stays unreachable past
// MaxIdle (ErrCoordinatorUnreachable). Losing a lease mid-run is not an
// error: the worker abandons the shard (someone else holds it now) and
// asks for the next.
func Work(ctx context.Context, cfg WorkerConfig) error {
	cfg.fill()
	if cfg.Coordinator == "" {
		return fmt.Errorf("fabric: worker needs a coordinator URL")
	}
	failures := 0
	lastContact := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := postLease(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if idle := time.Since(lastContact); idle > cfg.MaxIdle {
				return fmt.Errorf("%w: no contact for %v (budget %v): %v", ErrCoordinatorUnreachable, idle.Round(time.Second), cfg.MaxIdle, err)
			}
			sleep(ctx, cfg.Poll)
			continue
		}
		lastContact = time.Now()
		switch lease.Status {
		case StatusDone:
			cfg.Log("sweep done")
			return nil
		case StatusFailed:
			return fmt.Errorf("fabric: sweep failed: %s", lease.Error)
		case StatusWait:
			sleep(ctx, cfg.Poll)
		case StatusShard:
			if err := runLease(ctx, cfg, lease); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				failures++
				if failures >= cfg.MaxFailures {
					return err
				}
				cfg.Log("shard %s: %v (continuing)", lease.Shard.ID, err)
				sleep(ctx, cfg.Poll)
			} else {
				failures = 0
				lastContact = time.Now()
			}
		default:
			return fmt.Errorf("fabric: coordinator answered unknown lease status %q", lease.Status)
		}
	}
}

// runLease executes one leased shard under a heartbeat and uploads its
// bytes. A lost lease (heartbeat answered 410) cancels the run and
// returns nil — abandonment, not failure.
func runLease(ctx context.Context, cfg WorkerConfig, lease LeaseResponse) error {
	sh := *lease.Shard
	cfg.Log("leased shard %s (%s n=%d trials [%d,%d))", sh.ID, sh.Protocol, sh.N, sh.Lo, sh.Hi)
	cfg.Chaos.CrashPoint("worker.leased")

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var lost bool
	var mu sync.Mutex
	stopHeartbeat := heartbeat(runCtx, cfg, lease, func() {
		mu.Lock()
		lost = true
		mu.Unlock()
		cancelRun()
	})

	canonical, err := RunShard(runCtx, sh, lease.Scenario, cfg.TrialWorkers)
	stopHeartbeat()
	mu.Lock()
	abandoned := lost
	mu.Unlock()
	if err != nil {
		if abandoned && ctx.Err() == nil {
			cfg.Log("shard %s: lease lost, abandoning", sh.ID)
			return nil
		}
		return err
	}
	cfg.Chaos.CrashPoint("worker.ran")

	// The lease may have lapsed during a long trial; upload anyway — late
	// completions with identical bytes are merged idempotently.
	if err := postComplete(ctx, cfg, lease.LeaseID, canonical); err != nil {
		return err
	}
	cfg.Chaos.CrashPoint("worker.uploaded")
	cfg.Log("shard %s complete (%d records)", sh.ID, sh.Trials())
	return nil
}

// heartbeat renews the lease at TTL/3 until stopped; onLost fires when
// the coordinator answers 410 (the lease lapsed or was superseded).
// Transient network errors are retried through the shared policy and
// otherwise ignored — the run continues and a late completion is still
// acceptable.
func heartbeat(ctx context.Context, cfg WorkerConfig, lease LeaseResponse, onLost func()) (stop func()) {
	interval := time.Duration(lease.TTLMillis) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if gone := postRenew(hbCtx, cfg, lease.LeaseID); gone {
					onLost()
					return
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// postRenew sends one heartbeat through the retry policy, reporting
// whether the lease is gone (410). Errors that outlive the policy are
// swallowed: the next tick tries again, and the worst case — the lease
// silently lapsing — is exactly what the lease protocol already absorbs.
func postRenew(ctx context.Context, cfg WorkerConfig, leaseID string) (gone bool) {
	cfg.Retry.Do(ctx, func(int) error {
		code, retryAfter, err := postJSON(ctx, cfg.Client, cfg.Coordinator+"/v1/renew", RenewRequest{LeaseID: leaseID}, nil)
		if err != nil {
			return err
		}
		switch code {
		case http.StatusOK:
			return nil
		case http.StatusGone:
			gone = true
			return nil
		default:
			return chaos.WithRetryAfter(fmt.Errorf("fabric: renew answered %d", code), retryAfter)
		}
	})
	return gone
}

// RunShard executes one shard's trial range through the engine,
// returning the canonical record bytes — exactly the bytes the
// Experiment's probed path produces for those trials, re-serialized in
// trial order. Seeds are repro.TrialSeed(n, t) as everywhere else, so
// the bytes are a pure function of the shard, whatever worker runs it
// and at whatever parallelism.
func RunShard(ctx context.Context, sh Shard, sc repro.Scenario, workers int) ([]byte, error) {
	p, err := repro.NewProtocol(sh.Protocol)
	if err != nil {
		return nil, err
	}
	if sh.Hi <= sh.Lo {
		return nil, fmt.Errorf("fabric: shard %s has empty trial range [%d,%d)", sh.ID, sh.Lo, sh.Hi)
	}
	col := plan.NewCollector(sh.Lo, sh.Hi)
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ferr := runner.ForEach(ctx, sh.Trials(), func(i int) {
		t := sh.Lo + i
		seed := repro.TrialSeed(sh.N, t)
		// Mirror Experiment.runCell's probed path bit for bit: the
		// recording probe distills the same observables a service or
		// library run records, so shard bytes equal cell-slice bytes.
		rp := &repro.RecordingProbe{}
		if _, err := repro.ProbeTrial(p, sc, sh.N, seed, rp); err != nil {
			fail(err)
			return
		}
		rec := rp.Record()
		rec.Trial = t
		if err := col.Record(rec); err != nil {
			fail(err)
		}
	}, runner.Options{Workers: workers})
	if ferr != nil {
		return nil, ferr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return col.Encode()
}

// postLease asks the coordinator for work through the retry policy:
// transport errors and retryable statuses (429, 5xx) back off with full
// jitter honoring Retry-After; client errors are terminal.
func postLease(ctx context.Context, cfg WorkerConfig) (LeaseResponse, error) {
	var resp LeaseResponse
	err := cfg.Retry.Do(ctx, func(int) error {
		code, retryAfter, err := postJSON(ctx, cfg.Client, cfg.Coordinator+"/v1/lease", LeaseRequest{Worker: cfg.Name}, &resp)
		if err != nil {
			return err
		}
		switch {
		case code == http.StatusOK:
			return nil
		case code == http.StatusTooManyRequests || code >= 500:
			return chaos.WithRetryAfter(fmt.Errorf("fabric: lease request answered %d", code), retryAfter)
		default:
			return chaos.Permanent(fmt.Errorf("fabric: lease request answered %d", code))
		}
	})
	return resp, err
}

// postComplete uploads a shard's canonical bytes, gzipped, through the
// retry policy. A 409 (determinism violation) and a 410 (the lease is
// unknown to this coordinator) are terminal.
func postComplete(ctx context.Context, cfg WorkerConfig, leaseID string, canonical []byte) error {
	gz, err := gzipBytes(canonical)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/complete?lease_id=%s", cfg.Coordinator, leaseID)
	return cfg.Retry.Do(ctx, func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(gz))
		if err != nil {
			return chaos.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/gzip")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusConflict:
			return chaos.Permanent(fmt.Errorf("fabric: upload rejected: %s", bytes.TrimSpace(body)))
		case resp.StatusCode == http.StatusGone:
			return chaos.Permanent(fmt.Errorf("fabric: upload lease unknown: %s", bytes.TrimSpace(body)))
		default:
			return chaos.WithRetryAfter(
				fmt.Errorf("fabric: upload answered %d: %s", resp.StatusCode, bytes.TrimSpace(body)),
				retryAfterHeader(resp))
		}
	})
}

// postJSON posts v as JSON and decodes a 200 reply into out (when
// non-nil), returning the status code and any Retry-After the server
// sent alongside a refusal.
func postJSON(ctx context.Context, client *http.Client, url string, v, out any) (int, time.Duration, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		return resp.StatusCode, 0, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	return resp.StatusCode, retryAfterHeader(resp), nil
}

// retryAfterHeader parses a delay-seconds Retry-After; absent or
// unparsable reads as zero (no floor).
func retryAfterHeader(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleep waits d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
