package fabric

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/plan"
)

// sweepMeta is the checkpoint's identity file (sweep.json): the spec,
// the shard width it was planned with, and the digest binding the two.
// A coordinator reopening a checkpoint directory refuses to resume when
// the digest disagrees — completed shards from a different sweep (or
// the same sweep planned at a different width) must never be counted.
type sweepMeta struct {
	Digest      string    `json:"digest"`
	Spec        plan.Spec `json:"spec"`
	ShardTrials int       `json:"shard_trials"`
}

// journalEntry is one line of journal.jsonl: a shard completion, with
// the SHA-256 of the shard's canonical (uncompressed) record bytes and
// its record count. The journal is append-only and replay-idempotent.
type journalEntry struct {
	Shard   string `json:"shard"`
	SHA256  string `json:"sha256"`
	Records int    `json:"records"`
	Worker  string `json:"worker,omitempty"`
}

// Checkpoint is the coordinator's durable state: a directory holding
//
//	sweep.json    — identity (see sweepMeta)
//	journal.jsonl — one entry per completed shard, appended + fsynced
//	shards/<id>.jsonl.gz — the shard's canonical record bytes, gzipped,
//	                       written temp+rename before the journal entry
//
// The write order (shard file durable, then journal line) makes the
// journal the source of truth: an entry is only ever appended for bytes
// already on disk, so replay after a kill — at any point — either sees
// a completed shard in full or not at all, never a torn one.
type Checkpoint struct {
	dir     string
	journal *os.File
}

// OpenCheckpoint creates or reopens the checkpoint at dir for the sweep
// identified by digest, returning the completed shards recovered from
// the journal. A fresh directory is initialized; an existing one is
// validated against the digest.
func OpenCheckpoint(dir, digest string, spec plan.Spec, shardTrials int) (*Checkpoint, map[string]journalEntry, error) {
	if err := os.MkdirAll(filepath.Join(dir, "shards"), 0o755); err != nil {
		return nil, nil, err
	}
	metaPath := filepath.Join(dir, "sweep.json")
	if data, err := os.ReadFile(metaPath); err == nil {
		var meta sweepMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, nil, fmt.Errorf("fabric: corrupt checkpoint %s: %w", metaPath, err)
		}
		if meta.Digest != digest {
			return nil, nil, fmt.Errorf("fabric: checkpoint %s belongs to a different sweep (digest %.12s…, want %.12s…)", dir, meta.Digest, digest)
		}
	} else if os.IsNotExist(err) {
		meta := sweepMeta{Digest: digest, Spec: spec, ShardTrials: shardTrials}
		data, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := writeFileAtomic(metaPath, data); err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, err
	}

	ck := &Checkpoint{dir: dir}
	done, err := ck.replayJournal()
	if err != nil {
		return nil, nil, err
	}
	j, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	ck.journal = j
	return ck, done, nil
}

// replayJournal recovers completed shards: journal entries whose shard
// file exists count as done (duplicate entries are idempotent); entries
// whose file is missing are dropped — that shard simply re-runs.
func (ck *Checkpoint) replayJournal() (map[string]journalEntry, error) {
	done := make(map[string]journalEntry)
	f, err := os.Open(filepath.Join(ck.dir, "journal.jsonl"))
	if os.IsNotExist(err) {
		return done, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A torn final line (killed mid-append) is expected; its shard
			// file write already completed or the shard re-runs. Stop here.
			break
		}
		if _, err := os.Stat(ck.ShardPath(e.Shard)); err != nil {
			continue
		}
		done[e.Shard] = e
	}
	return done, sc.Err()
}

// ShardPath returns the on-disk path of a shard's record file.
func (ck *Checkpoint) ShardPath(id string) string {
	return filepath.Join(ck.dir, "shards", id+".jsonl.gz")
}

// WriteShard persists a shard's canonical record bytes (plain JSONL in,
// gzip on disk) and journals the completion, in that order, both
// durable before returning.
func (ck *Checkpoint) WriteShard(e journalEntry, canonical []byte) error {
	gz, err := gzipBytes(canonical)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(ck.ShardPath(e.Shard), gz); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := ck.journal.Write(append(line, '\n')); err != nil {
		return err
	}
	return ck.journal.Sync()
}

// Close releases the journal handle.
func (ck *Checkpoint) Close() error {
	if ck.journal != nil {
		return ck.journal.Close()
	}
	return nil
}

// writeFileAtomic writes data via a temp file + rename, fsyncing before
// the rename so a crash never leaves a torn file under the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// gzipBytes compresses data at the default level — a deterministic
// function of the input (the header carries no timestamp), so
// checkpoint shard files are byte-stable across re-runs.
func gzipBytes(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
