package fabric

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chaos"
	"repro/internal/plan"
)

// sweepMeta is the checkpoint's identity file (sweep.json): the spec,
// the shard width it was planned with, and the digest binding the two.
// A coordinator reopening a checkpoint directory refuses to resume when
// the digest disagrees — completed shards from a different sweep (or
// the same sweep planned at a different width) must never be counted.
type sweepMeta struct {
	Digest      string    `json:"digest"`
	Spec        plan.Spec `json:"spec"`
	ShardTrials int       `json:"shard_trials"`
}

// journalEntry is one line of journal.jsonl: a shard completion, with
// the SHA-256 of the shard's canonical (uncompressed) record bytes and
// its record count. The journal is append-only and replay-idempotent.
type journalEntry struct {
	Shard   string `json:"shard"`
	SHA256  string `json:"sha256"`
	Records int    `json:"records"`
	Worker  string `json:"worker,omitempty"`
}

// CheckpointStats counts what resume recovery had to repair. Nothing in
// here fails a sweep — every corrupt artifact is quarantined or skipped
// and its shard simply re-runs — but the counters surface on /v1/stats
// so silent storage trouble is visible.
type CheckpointStats struct {
	// Quarantined counts shard files whose content digest disagreed with
	// their journal entry at resume (a torn or bit-rotted write the
	// storage stack reported as durable). Each is renamed aside with a
	// .corrupt suffix and its shard re-leased.
	Quarantined int `json:"quarantined"`
	// CorruptJournalLines counts journal lines dropped at replay — CRC
	// mismatch, torn tail, unparsable JSON. Safe to drop: a missing
	// completion only means the shard re-runs idempotently.
	CorruptJournalLines int `json:"corrupt_journal_lines"`
}

// Checkpoint is the coordinator's durable state: a directory holding
//
//	sweep.json    — identity (see sweepMeta)
//	journal.jsonl — one CRC-framed entry per completed shard, appended +
//	                fsynced
//	shards/<id>.jsonl.gz — the shard's canonical record bytes, gzipped,
//	                       written temp+rename before the journal entry
//
// The write order (shard file durable, then journal line) makes the
// journal the source of truth: an entry is only ever appended for bytes
// already on disk. Because storage can still lie — a torn write
// surviving an fsync, a flipped bit under the final name — every journal
// line carries a CRC32 of itself and resume re-verifies each completed
// shard's SHA-256 before trusting it: corrupt lines are skipped, corrupt
// shards quarantined and re-run, and only conflicting *valid* bytes ever
// fail a sweep.
type Checkpoint struct {
	dir     string
	fs      chaos.FS
	journal chaos.AppendWriter
	stats   CheckpointStats
}

// journalCRC is the journal's line checksum (IEEE CRC32 over the JSON
// payload), framed as "crc32=XXXXXXXX {json}\n". Plain JSON lines from
// pre-CRC checkpoints still replay (their integrity check is the shard
// digest verification that follows).
var journalCRC = crc32.IEEETable

// frameJournalLine renders one CRC-framed journal line.
func frameJournalLine(payload []byte) []byte {
	sum := crc32.Checksum(payload, journalCRC)
	out := make([]byte, 0, len(payload)+16)
	out = append(out, fmt.Sprintf("crc32=%08x ", sum)...)
	out = append(out, payload...)
	return append(out, '\n')
}

// parseJournalLine validates one journal line's framing, returning the
// JSON payload. Legacy lines without a CRC frame pass through.
func parseJournalLine(line []byte) ([]byte, error) {
	s := string(line)
	if !strings.HasPrefix(s, "crc32=") {
		return line, nil // legacy plain-JSON line
	}
	rest := s[len("crc32="):]
	sp := strings.IndexByte(rest, ' ')
	if sp != 8 {
		return nil, fmt.Errorf("malformed crc32 frame")
	}
	var want uint32
	if _, err := fmt.Sscanf(rest[:8], "%08x", &want); err != nil {
		return nil, fmt.Errorf("malformed crc32 frame: %v", err)
	}
	payload := []byte(rest[9:])
	if got := crc32.Checksum(payload, journalCRC); got != want {
		return nil, fmt.Errorf("crc32 mismatch: have %08x, want %08x", got, want)
	}
	return payload, nil
}

// OpenCheckpoint creates or reopens the checkpoint at dir for the sweep
// identified by digest, returning the completed shards recovered from
// the journal — each re-verified against its recorded content digest.
// A fresh directory is initialized; an existing one is validated against
// the digest. fs substitutes the filesystem (the chaos seam); nil
// selects the real one.
func OpenCheckpoint(dir, digest string, spec plan.Spec, shardTrials int, fs chaos.FS) (*Checkpoint, map[string]journalEntry, error) {
	if fs == nil {
		fs = chaos.OS()
	}
	if err := fs.MkdirAll(filepath.Join(dir, "shards")); err != nil {
		return nil, nil, err
	}
	metaPath := filepath.Join(dir, "sweep.json")
	if data, err := fs.ReadFile(metaPath); err == nil {
		var meta sweepMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, nil, fmt.Errorf("fabric: corrupt checkpoint %s: %w", metaPath, err)
		}
		if meta.Digest != digest {
			return nil, nil, fmt.Errorf("fabric: checkpoint %s belongs to a different sweep (digest %.12s…, want %.12s…)", dir, meta.Digest, digest)
		}
	} else if os.IsNotExist(err) {
		meta := sweepMeta{Digest: digest, Spec: spec, ShardTrials: shardTrials}
		data, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := fs.WriteFileAtomic(metaPath, data); err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, err
	}

	ck := &Checkpoint{dir: dir, fs: fs}
	done, err := ck.replayJournal()
	if err != nil {
		return nil, nil, err
	}
	ck.verifyShards(done)
	j, err := fs.AppendFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, nil, err
	}
	ck.journal = j
	return ck, done, nil
}

// replayJournal recovers completed shards: journal entries whose shard
// file exists count as done (duplicate entries are idempotent); entries
// whose file is missing are dropped — that shard simply re-runs. Corrupt
// lines — CRC mismatch, torn tail, unparsable JSON — are skipped and
// counted, never fatal: the worst case is an already-finished shard
// running again, and identical bytes merge idempotently.
func (ck *Checkpoint) replayJournal() (map[string]journalEntry, error) {
	done := make(map[string]journalEntry)
	f, err := ck.fs.Open(filepath.Join(ck.dir, "journal.jsonl"))
	if os.IsNotExist(err) {
		return done, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		payload, err := parseJournalLine(sc.Bytes())
		if err != nil {
			ck.stats.CorruptJournalLines++
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil || e.Shard == "" {
			ck.stats.CorruptJournalLines++
			continue
		}
		if _, err := ck.fs.Stat(ck.ShardPath(e.Shard)); err != nil {
			continue
		}
		done[e.Shard] = e
	}
	return done, sc.Err()
}

// verifyShards re-derives each recovered shard's content digest and
// quarantines any file that disagrees with its journal entry — the only
// way to catch a write that tore *and* lied about it. A quarantined
// shard is renamed aside (never deleted: the bytes are evidence) and
// dropped from done, so the coordinator re-leases it.
func (ck *Checkpoint) verifyShards(done map[string]journalEntry) {
	for id, e := range done {
		if ck.shardDigestOK(id, e.SHA256) {
			continue
		}
		path := ck.ShardPath(id)
		ck.fs.Rename(path, path+".corrupt")
		ck.stats.Quarantined++
		delete(done, id)
	}
}

// shardDigestOK gunzips one shard file and checks its canonical bytes
// against the journal's SHA-256. Any failure — unreadable, truncated
// gzip, digest mismatch — reports false.
func (ck *Checkpoint) shardDigestOK(id, wantSHA string) bool {
	f, err := ck.fs.Open(ck.ShardPath(id))
	if err != nil {
		return false
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return false
	}
	defer gz.Close()
	h := sha256.New()
	if _, err := io.Copy(h, gz); err != nil {
		return false
	}
	return hex.EncodeToString(h.Sum(nil)) == wantSHA
}

// Stats reports what recovery repaired.
func (ck *Checkpoint) Stats() CheckpointStats { return ck.stats }

// ShardPath returns the on-disk path of a shard's record file.
func (ck *Checkpoint) ShardPath(id string) string {
	return filepath.Join(ck.dir, "shards", id+".jsonl.gz")
}

// WriteShard persists a shard's canonical record bytes (plain JSONL in,
// gzip on disk) and journals the completion, in that order, both
// durable before returning.
func (ck *Checkpoint) WriteShard(e journalEntry, canonical []byte) error {
	gz, err := gzipBytes(canonical)
	if err != nil {
		return err
	}
	if err := ck.fs.WriteFileAtomic(ck.ShardPath(e.Shard), gz); err != nil {
		return err
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := ck.journal.Write(frameJournalLine(payload)); err != nil {
		return err
	}
	return ck.journal.Sync()
}

// Close releases the journal handle.
func (ck *Checkpoint) Close() error {
	if ck.journal != nil {
		return ck.journal.Close()
	}
	return nil
}

// gzipBytes compresses data at the default level — a deterministic
// function of the input (the header carries no timestamp), so
// checkpoint shard files are byte-stable across re-runs.
func gzipBytes(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
