package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/plan"
	"repro/internal/service"
)

// CoordinatorConfig sizes a sweep coordinator.
type CoordinatorConfig struct {
	// Spec is the sweep to distribute.
	Spec plan.Spec
	// ShardTrials is the trial width of each shard; 0 (or anything past
	// the trial count) plans whole-cell shards.
	ShardTrials int
	// LeaseTTL bounds how long a silent worker holds a shard; 0 selects
	// 30 seconds. Workers renew at TTL/3.
	LeaseTTL time.Duration
	// Dir is the checkpoint directory (required): shard records and the
	// completion journal land here, and an existing directory for the
	// same sweep resumes instead of restarting.
	Dir string
	// Clock substitutes the lease clock in tests; nil selects time.Now.
	Clock func() time.Time
	// FS substitutes the checkpoint filesystem — the seam chaos tests
	// inject torn writes, ENOSPC and fsync failures through; nil selects
	// the real one.
	FS chaos.FS
}

// shardState is one shard's coordinator-side lifecycle.
type shardState struct {
	shard   Shard
	display string // the protocol display name records must carry

	done    bool
	sha     string // SHA-256 of the canonical record bytes, once done
	records int

	leaseID string // live lease, "" when unleased
	worker  string
	expires time.Time
	lapsed  bool // a previous lease on this shard expired (→ reissue)
}

// Coordinator distributes one sweep: it owns the shard plan, the lease
// table and the checkpoint, and serves the worker protocol (lease /
// renew / complete) plus /v1/stats over its Handler. All state changes
// go through one mutex; expiry is lazy — an expired lease is detected
// and re-issued when the next worker asks for work — so the coordinator
// needs no background goroutine and its behavior is a pure function of
// the request sequence and the clock.
type Coordinator struct {
	cfg    CoordinatorConfig
	digest string
	ck     *Checkpoint
	mux    *http.ServeMux

	mu            sync.Mutex
	shards        []*shardState
	byID          map[string]*shardState
	leases        map[string]*shardState // lease id → shard, kept for late completions
	seq           int
	leaseStats    LeaseStats
	dups          uint64
	recordsMerged uint64
	doneCount     int
	failErr       error
	doneCh        chan struct{}
	failCh        chan struct{}
}

// NewCoordinator plans the sweep, opens (or resumes) its checkpoint and
// returns a coordinator ready to serve.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fabric: coordinator needs a checkpoint directory")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("fabric: bad spec: %w", err)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ShardTrials <= 0 || cfg.ShardTrials > cfg.Spec.Trials {
		cfg.ShardTrials = cfg.Spec.Trials
	}
	digest, err := cfg.Spec.Digest(fmt.Sprintf("fabric.shard_trials=%d", cfg.ShardTrials))
	if err != nil {
		return nil, err
	}
	shards, err := PlanShards(cfg.Spec, cfg.ShardTrials)
	if err != nil {
		return nil, err
	}
	ck, completed, err := OpenCheckpoint(cfg.Dir, digest, cfg.Spec, cfg.ShardTrials, cfg.FS)
	if err != nil {
		return nil, err
	}

	c := &Coordinator{
		cfg:    cfg,
		digest: digest,
		ck:     ck,
		byID:   make(map[string]*shardState, len(shards)),
		leases: make(map[string]*shardState),
		doneCh: make(chan struct{}),
		failCh: make(chan struct{}),
	}
	for _, sh := range shards {
		p, err := repro.NewProtocol(sh.Protocol)
		if err != nil {
			ck.Close()
			return nil, err
		}
		st := &shardState{shard: sh, display: p.Info().Name}
		if e, ok := completed[sh.ID]; ok {
			st.done = true
			st.sha = e.SHA256
			st.records = e.Records
			c.doneCount++
			c.recordsMerged += uint64(e.Records)
		}
		c.shards = append(c.shards, st)
		c.byID[sh.ID] = st
	}
	if c.doneCount == len(c.shards) {
		close(c.doneCh)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/lease", c.handleLease)
	c.mux.HandleFunc("/v1/renew", c.handleRenew)
	c.mux.HandleFunc("/v1/complete", c.handleComplete)
	c.mux.HandleFunc("/v1/stats", c.handleStats)
	return c, nil
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// SpecDigest returns the sweep's content address.
func (c *Coordinator) SpecDigest() string { return c.digest }

// Close releases the checkpoint journal.
func (c *Coordinator) Close() error { return c.ck.Close() }

func (c *Coordinator) now() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock()
	}
	return time.Now()
}

// Wait blocks until the sweep completes (nil), fails hard (the sweep
// error) or ctx expires.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-c.failCh:
		return c.Err()
	case <-ctx.Done():
		return fmt.Errorf("fabric: interrupted with %d/%d shards done (checkpoint %s resumes)", c.Stats().Shards.Done, len(c.shards), c.cfg.Dir)
	}
}

// Done is closed when every shard has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Err returns the sweep's sticky failure (a determinism violation), if
// any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr
}

// fail records the sweep's first hard failure; callers hold mu.
func (c *Coordinator) fail(err error) {
	if c.failErr == nil {
		c.failErr = err
		close(c.failCh)
	}
}

// Stats snapshots the fabric counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	st := Stats{
		SpecDigest:    c.digest,
		Leases:        c.leaseStats,
		RecordsMerged: c.recordsMerged,
		Done:          c.doneCount == len(c.shards),
		Checkpoint:    c.ck.Stats(),
	}
	st.Shards = ShardStats{Total: len(c.shards), Done: c.doneCount, Duplicates: c.dups}
	for _, s := range c.shards {
		if s.done {
			continue
		}
		if s.leaseID != "" && now.Before(s.expires) {
			st.Work.InFlight++
		} else {
			st.Work.QueueDepth++
		}
	}
	if c.failErr != nil {
		st.Error = c.failErr.Error()
	}
	return st
}

// handleLease hands out the first pending shard without a live lease,
// lazily expiring lapsed leases on the way.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr != nil {
		writeJSON(w, LeaseResponse{Status: StatusFailed, Error: c.failErr.Error(), SpecDigest: c.digest})
		return
	}
	if c.doneCount == len(c.shards) {
		writeJSON(w, LeaseResponse{Status: StatusDone, SpecDigest: c.digest})
		return
	}
	for _, st := range c.shards {
		if st.done {
			continue
		}
		if st.leaseID != "" {
			if now.Before(st.expires) {
				continue
			}
			// The holder went silent past its TTL: count the lapse and
			// re-issue. Its late completion, should one arrive, is still
			// welcome — identical bytes merge idempotently.
			c.leaseStats.Expired++
			st.leaseID = ""
			st.lapsed = true
		}
		c.seq++
		id := fmt.Sprintf("l-%06d", c.seq)
		st.leaseID = id
		st.worker = req.Worker
		st.expires = now.Add(c.cfg.LeaseTTL)
		c.leases[id] = st
		c.leaseStats.Issued++
		if st.lapsed {
			c.leaseStats.Reissued++
		}
		sh := st.shard
		writeJSON(w, LeaseResponse{
			Status:     StatusShard,
			LeaseID:    id,
			TTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
			Shard:      &sh,
			Scenario:   c.cfg.Spec.Scenario,
			SpecDigest: c.digest,
		})
		return
	}
	writeJSON(w, LeaseResponse{Status: StatusWait, SpecDigest: c.digest})
}

// handleRenew extends a live lease; a lease that lapsed, was superseded
// or whose shard already completed answers 410 Gone, telling the worker
// to stop heartbeating (and, for a lapsed lease, to abandon the run —
// the shard is someone else's now).
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad renew request", http.StatusBadRequest)
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.leases[req.LeaseID]
	if !ok || st.done || st.leaseID != req.LeaseID {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	if !now.Before(st.expires) {
		c.leaseStats.Expired++
		st.leaseID = ""
		st.lapsed = true
		http.Error(w, "lease expired", http.StatusGone)
		return
	}
	st.expires = now.Add(c.cfg.LeaseTTL)
	c.leaseStats.Renewed++
	writeJSON(w, RenewResponse{TTLMillis: c.cfg.LeaseTTL.Milliseconds()})
}

// handleComplete accepts a shard's record bytes (gzip or plain JSONL
// body), validates them against the shard's trial range, persists them
// to the checkpoint and marks the shard done. Completion is decoupled
// from lease liveness: a straggler whose lease lapsed may still land
// its shard — first completion wins, identical duplicates are counted
// and dropped, and a conflicting duplicate fails the sweep loudly (two
// workers disagreeing about a pure function is a determinism violation,
// never something to paper over).
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	leaseID := r.URL.Query().Get("lease_id")
	c.mu.Lock()
	st, ok := c.leases[leaseID]
	c.mu.Unlock()
	if !ok {
		http.Error(w, "unknown lease", http.StatusGone)
		return
	}

	// Decode and canonicalize outside the lock — CPU-bound work no other
	// shard should wait on.
	canonical, err := canonicalShardBytes(st.shard, st.display, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sum := sha256.Sum256(canonical)
	sha := hex.EncodeToString(sum[:])

	c.mu.Lock()
	defer c.mu.Unlock()
	if st.done {
		if st.sha == sha {
			c.dups++
			writeJSON(w, map[string]string{"status": "duplicate"})
			return
		}
		err := fmt.Errorf("fabric: shard %s completed twice with different bytes — determinism violation (have %.12s…, got %.12s…)", st.shard.ID, st.sha, sha)
		c.fail(err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	entry := journalEntry{Shard: st.shard.ID, SHA256: sha, Records: plan.CountLines(canonical), Worker: st.worker}
	if err := c.ck.WriteShard(entry, canonical); err != nil {
		http.Error(w, fmt.Sprintf("checkpoint: %v", err), http.StatusInternalServerError)
		return
	}
	st.done = true
	st.sha = sha
	st.records = entry.Records
	st.leaseID = ""
	c.doneCount++
	c.recordsMerged += uint64(entry.Records)
	if c.doneCount == len(c.shards) {
		close(c.doneCh)
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, c.Stats())
}

// canonicalShardBytes decodes an uploaded shard body (gzip-sniffed) and
// re-serializes it canonically — trial order, compact JSON — after
// validating every record sits in the shard's range with the shard's
// protocol and size, and that the range is fully covered.
func canonicalShardBytes(sh Shard, display string, body io.Reader) ([]byte, error) {
	col := plan.NewCollector(sh.Lo, sh.Hi)
	err := repro.DecodeTrialRecords(body, func(rec repro.TrialRecord) error {
		if rec.Protocol != display || rec.N != sh.N {
			return fmt.Errorf("record (%s, n=%d) does not belong to shard %s (%s, n=%d)", rec.Protocol, rec.N, sh.ID, display, sh.N)
		}
		return col.Record(rec)
	})
	if err != nil {
		return nil, fmt.Errorf("shard %s upload: %w", sh.ID, err)
	}
	canonical, err := col.Encode()
	if err != nil {
		return nil, fmt.Errorf("shard %s upload: %w", sh.ID, err)
	}
	return canonical, nil
}

// Merged folds the checkpoint's shard files into the canonical record
// stream, byte-identical to a serial run's (see repro.MergeShards). It
// is only meaningful once Done.
func (c *Coordinator) Merged() ([]repro.TrialRecord, error) {
	c.mu.Lock()
	paths := make([]string, 0, len(c.shards))
	for _, st := range c.shards {
		if st.done {
			paths = append(paths, c.ck.ShardPath(st.shard.ID))
		}
	}
	c.mu.Unlock()
	readers := make([]io.Reader, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	return repro.MergeShards(c.cfg.Spec.Experiment(), readers...)
}

// WorkGauges are the coordinator's shard-granularity gauges, the same
// shape the service exports for cells.
func (c *Coordinator) WorkGauges() service.WorkGauges { return c.Stats().Work }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
