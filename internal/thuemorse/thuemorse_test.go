package thuemorse

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBitKnownValues(t *testing.T) {
	// 0 1 1 0 1 0 0 1 1 0 0 1 0 1 1 0 (OEIS A010060).
	want := []uint8{0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0}
	for i, w := range want {
		if got := Bit(i); got != w {
			t.Fatalf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRecurrences(t *testing.T) {
	// t(2n) = t(n); t(2n+1) = 1 - t(n).
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw)
		return Bit(2*n) == Bit(n) && Bit(2*n+1) == 1-Bit(n)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMorphismFixedPoint(t *testing.T) {
	// The prefix of length 2^{k+1} is the length-2^k prefix followed by its
	// complement.
	for k := 0; k <= 10; k++ {
		n := 1 << uint(k)
		p := Prefix(2 * n)
		for i := 0; i < n; i++ {
			if p[n+i] != 1-p[i] {
				t.Fatalf("k=%d: doubling identity broken at %d", k, i)
			}
		}
	}
}

func TestPrefixAndIsPrefix(t *testing.T) {
	p := Prefix(100)
	if !IsPrefix(p) {
		t.Fatal("Prefix not recognized by IsPrefix")
	}
	p[57] ^= 1
	if IsPrefix(p) {
		t.Fatal("corrupted prefix accepted")
	}
	if !IsPrefix(nil) {
		t.Fatal("empty string is trivially a prefix")
	}
}

// TestPrefixesAreCubeFree is the load-bearing property from Thue (1912)
// that the Chen–Chen construction rests on.
func TestPrefixesAreCubeFree(t *testing.T) {
	s := Prefix(512)
	if i, d := FindCube(s); i >= 0 {
		t.Fatalf("cube of period %d at %d in a Thue–Morse prefix", d, i)
	}
}

func TestFindCubeFindsPlantedCubes(t *testing.T) {
	tests := []struct {
		name string
		s    []uint8
		want bool
	}{
		{"triple zero", []uint8{0, 0, 0}, true},
		{"triple one embedded", []uint8{0, 1, 1, 1, 0}, true},
		{"period two", []uint8{0, 1, 0, 1, 0, 1}, true},
		{"square only", []uint8{0, 1, 0, 1}, false},
		{"too short", []uint8{0, 0}, false},
		{"empty", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			i, d := FindCube(tt.s)
			if got := i >= 0; got != tt.want {
				t.Fatalf("FindCube(%v) = (%d,%d), want cube=%v", tt.s, i, d, tt.want)
			}
		})
	}
}

func TestFindCubeReturnsRealCube(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 200; trial++ {
		n := 6 + rng.Intn(40)
		s := make([]uint8, n)
		for i := range s {
			s[i] = uint8(rng.Intn(2))
		}
		i, d := FindCube(s)
		if i < 0 {
			continue
		}
		for j := 0; j < d; j++ {
			if s[i+j] != s[i+j+d] || s[i+j] != s[i+j+2*d] {
				t.Fatalf("reported cube (%d,%d) is not a cube in %v", i, d, s)
			}
		}
	}
}

// TestCyclicAlwaysHasCube is the leaderless-detectability fact: any cyclic
// binary string contains a cube when wrapping is allowed (at worst the
// trivial period-n reading).
func TestCyclicAlwaysHasCube(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(30)
		s := make([]uint8, n)
		for i := range s {
			s[i] = uint8(rng.Intn(2))
		}
		if i, _ := FindCubeCyclic(s); i < 0 {
			t.Fatalf("cyclic string %v reported cube-free", s)
		}
	}
	// Even Thue–Morse prefixes have cyclic cubes.
	if i, _ := FindCubeCyclic(Prefix(16)); i < 0 {
		t.Fatal("cyclic Thue-Morse prefix reported cube-free")
	}
}

func TestLinearVsCyclicAgreeOnLinearCubes(t *testing.T) {
	s := []uint8{1, 0, 0, 0, 1}
	li, ld := FindCube(s)
	ci, cd := FindCubeCyclic(s)
	if li < 0 || ci < 0 {
		t.Fatalf("planted cube missed: linear (%d,%d), cyclic (%d,%d)", li, ld, ci, cd)
	}
}

func BenchmarkFindCube(b *testing.B) {
	s := Prefix(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindCube(s)
	}
}
