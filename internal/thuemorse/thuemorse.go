// Package thuemorse implements the Thue–Morse sequence and cube-detection
// utilities — the string substrate of the Chen–Chen SS-LE protocol
// (reference [11] of the paper, discussed in its Section 3.1).
//
// The Thue–Morse sequence t(0), t(1), ... has t(i) equal to the parity of
// the number of 1-bits of i. Its prefixes are cube-free: no string www with
// w non-empty appears as a contiguous substring (Thue 1912). Chen and Chen
// embed a prefix on the ring anchored at the leader, so a surviving leader
// makes cube detection impossible, while a leaderless ring always exhibits
// a cube when read cyclically.
package thuemorse

import "math/bits"

// Bit returns the i-th Thue–Morse bit: the parity of popcount(i).
func Bit(i int) uint8 {
	return uint8(bits.OnesCount64(uint64(i)) & 1)
}

// Prefix returns the first n Thue–Morse bits.
func Prefix(n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = Bit(i)
	}
	return out
}

// IsPrefix reports whether s equals the Thue–Morse prefix of its length.
func IsPrefix(s []uint8) bool {
	for i, b := range s {
		if b != Bit(i) {
			return false
		}
	}
	return true
}

// FindCube returns the start index and period of the first cube www found
// in the linear string s, or (-1, 0) when s is cube-free. A cube with
// period d at position i means s[i+j] = s[i+d+j] = s[i+2d+j] for all
// j < d.
func FindCube(s []uint8) (start, period int) {
	n := len(s)
	for d := 1; 3*d <= n; d++ {
		for i := 0; i+3*d <= n; i++ {
			if isCubeAt(s, i, d, false) {
				return i, d
			}
		}
	}
	return -1, 0
}

// FindCubeCyclic is FindCube on the cyclic string: occurrences may wrap,
// and periods up to the full length are admitted (a period-n "cube" is the
// ring read three times, which always exists — the detectability of a
// leaderless ring).
func FindCubeCyclic(s []uint8) (start, period int) {
	n := len(s)
	for d := 1; d <= n; d++ {
		for i := 0; i < n; i++ {
			if isCubeAt(s, i, d, true) {
				return i, d
			}
		}
	}
	return -1, 0
}

func isCubeAt(s []uint8, i, d int, cyclic bool) bool {
	n := len(s)
	for j := 0; j < d; j++ {
		a, b, c := i+j, i+j+d, i+j+2*d
		if cyclic {
			a, b, c = a%n, b%n, c%n
		}
		if s[a] != s[b] || s[b] != s[c] {
			return false
		}
	}
	return true
}
