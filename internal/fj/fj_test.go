package fj

import (
	"testing"

	"repro/internal/war"
	"repro/internal/xrand"
)

func TestOracleCreatesLeader(t *testing.T) {
	p := New()
	_, r := p.Step(State{}, State{}, Oracle{NoLeader: true, NoBullet: true})
	if !r.Leader || !r.Shield || !r.Waiting || r.Bullet != war.Live {
		t.Fatalf("oracle creation: %+v", r)
	}
}

func TestInitiatorLeaderFiresLive(t *testing.T) {
	p := New()
	l, _ := p.Step(State{Leader: true}, State{}, Oracle{})
	// The fired bullet moves to the responder within the interaction.
	if !l.Shield || !l.Waiting {
		t.Fatalf("initiator fire: %+v", l)
	}
}

func TestResponderLeaderFiresDummy(t *testing.T) {
	p := New()
	_, r := p.Step(State{}, State{Leader: true, Shield: true}, Oracle{})
	if r.Shield || !r.Waiting || r.Bullet != war.Dummy {
		t.Fatalf("responder fire: %+v", r)
	}
}

func TestWaitingLeaderHoldsFire(t *testing.T) {
	p := New()
	l, _ := p.Step(State{Leader: true, Waiting: true}, State{}, Oracle{})
	if l.Bullet != war.None {
		t.Fatal("waiting leader fired")
	}
}

func TestNoBulletOracleUnlocks(t *testing.T) {
	p := New()
	l, _ := p.Step(State{Leader: true, Waiting: true}, State{}, Oracle{NoBullet: true})
	// Unlock happens first, so the leader fires in the same interaction.
	if !l.Waiting || l.Shield != true {
		t.Fatalf("unlocked leader did not fire: %+v", l)
	}
}

func TestBulletArrivalKillsUnshielded(t *testing.T) {
	p := New()
	_, r := p.Step(State{Bullet: war.Live}, State{Leader: true, Waiting: true}, Oracle{})
	if r.Leader {
		t.Fatal("unshielded leader survived")
	}
	if r.Waiting {
		t.Fatal("kill must clear waiting")
	}
}

func TestBulletArrivalUnlocksShielded(t *testing.T) {
	p := New()
	_, r := p.Step(State{Bullet: war.Live}, State{Leader: true, Waiting: true, Shield: true}, Oracle{})
	if !r.Leader {
		t.Fatal("shielded leader killed")
	}
	if r.Waiting {
		t.Fatal("arrival must unlock the leader")
	}
}

func TestDummyNeverKills(t *testing.T) {
	p := New()
	_, r := p.Step(State{Bullet: war.Dummy}, State{Leader: true, Waiting: true}, Oracle{})
	if !r.Leader {
		t.Fatal("dummy bullet killed a leader")
	}
}

func TestBulletAbsorption(t *testing.T) {
	p := New()
	l, r := p.Step(State{Bullet: war.Live}, State{Bullet: war.Dummy}, Oracle{})
	if l.Bullet != war.None || r.Bullet != war.Dummy {
		t.Fatalf("absorption: l=%v r=%v", l.Bullet, r.Bullet)
	}
}

func TestBulletMoves(t *testing.T) {
	p := New()
	l, r := p.Step(State{Bullet: war.Live}, State{}, Oracle{})
	if l.Bullet != war.None || r.Bullet != war.Live {
		t.Fatalf("move: l=%v r=%v", l.Bullet, r.Bullet)
	}
}

func TestConvergenceFromRandom(t *testing.T) {
	for _, n := range []int{8, 16, 24} {
		for seed := uint64(0); seed < 3; seed++ {
			ru := NewRunner(n, xrand.New(seed))
			rng := xrand.New(seed + 31)
			ru.SetStates(ru.proto.RandomConfig(rng, n))
			maxSteps := 3000 * uint64(n) * uint64(n) * uint64(n)
			_, ok := ru.Engine().RunUntil(Stable, n, maxSteps)
			if !ok {
				t.Fatalf("n=%d seed=%d: not stable within %d steps", n, seed, maxSteps)
			}
		}
	}
}

func TestConvergenceFromEmpty(t *testing.T) {
	n := 16
	ru := NewRunner(n, xrand.New(7))
	ru.SetStates(make([]State, n))
	if _, ok := ru.Engine().RunUntil(Stable, n, 3000*uint64(n*n*n)); !ok {
		t.Fatal("empty start never stabilized")
	}
}

func TestStabilityIsAbsorbing(t *testing.T) {
	n := 12
	ru := NewRunner(n, xrand.New(8))
	rng := xrand.New(9)
	ru.SetStates(ru.proto.RandomConfig(rng, n))
	if _, ok := ru.Engine().RunUntil(Stable, n, 3000*uint64(n*n*n)); !ok {
		t.Fatal("did not stabilize")
	}
	changes := ru.Engine().LeaderChanges()
	for i := 0; i < 400000; i++ {
		ru.Engine().Step()
		if !Stable(ru.Engine().Config()) {
			t.Fatalf("left the stable set at extra step %d", i)
		}
	}
	if ru.Engine().LeaderChanges() != changes {
		t.Fatal("leader changed after stabilization")
	}
}

func TestStableRejectsBadShapes(t *testing.T) {
	if Stable([]State{{}, {}}) {
		t.Fatal("no leader judged stable")
	}
	if Stable([]State{{Leader: true}, {Leader: true, Waiting: true, Bullet: war.Dummy}}) {
		t.Fatal("two leaders judged stable")
	}
	if Stable([]State{{Leader: true, Waiting: true}, {}}) {
		t.Fatal("waiting leader with no bullet judged stable")
	}
	if Stable([]State{{Leader: true, Waiting: true}, {Bullet: war.Live}}) {
		t.Fatal("unshielded leader with live bullet judged stable")
	}
	if !Stable([]State{{Leader: true, Waiting: true, Shield: true}, {Bullet: war.Live}}) {
		t.Fatal("canonical stable shape rejected")
	}
	if !Stable([]State{{Leader: true}, {}}) {
		t.Fatal("bullet-free ready leader rejected")
	}
}

func TestStateCountConstant(t *testing.T) {
	if got := New().StateCount(); got != 24 {
		t.Fatalf("state count = %d, want 24", got)
	}
}

func BenchmarkStep(b *testing.B) {
	p := New()
	l := State{Leader: true}
	r := State{}
	env := Oracle{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r = p.Step(l, r, env)
	}
}
