// Package fj implements an SS-LE ring protocol in the style of Fischer and
// Jiang (2006) — reference [15] of the paper and the second row of its
// Table 1: the oracle Ω?, O(1) states, Θ(n³)-class expected convergence.
//
// Reconstruction (documented substitution): the original introduced the
// bullets-and-shields war on rings, paired with the eventual leader
// detector Ω?. We model the oracle exactly as the paper does when it
// attributes the Θ(n³) bound: it reports the absence of a leader
// immediately. As in the oracle family (Beauquier et al. [7] use two Ω?
// instances), a second instance reporting the absence of bullets frees a
// leader stuck waiting for a bullet that an adversarial initial
// configuration never launched.
//
// War rules: a non-waiting leader fires on its next interaction — live and
// shielded when it is the initiator, dummy and unshielded when it is the
// responder (one fair coin from the scheduler). Bullets travel clockwise,
// are absorbed by the bullet ahead, and die at the first leader they
// reach, killing it when live and unshielded and, either way, licensing it
// to fire again (relay). A leader whose outstanding live bullet is in
// flight is still shielded, so the last leader can never shoot itself.
package fj

import (
	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

// State is the per-agent state: O(1) in n.
type State struct {
	Leader bool
	// Waiting marks a leader with an outstanding bullet; it may not fire
	// again until some bullet reaches it (or Ω? reports a bullet-free
	// ring).
	Waiting bool
	Shield  bool
	Bullet  war.Bullet
}

// Oracle is the Ω? view handed to every interaction: global emptiness
// predicates, computed by the runner just before the interaction.
type Oracle struct {
	NoLeader bool
	NoBullet bool
}

// Protocol is the FJ-style protocol; it is stateless apart from the rules.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Step is the transition function under the oracle view env.
func (p *Protocol) Step(l, r State, env Oracle) (State, State) {
	// Ω?(bullet): a waiting leader in a bullet-free ring may fire again.
	if env.NoBullet {
		if l.Leader {
			l.Waiting = false
		}
		if r.Leader {
			r.Waiting = false
		}
	}
	// Ω?(leader): a leaderless ring elects the responder, armed.
	if env.NoLeader {
		r.Leader = true
		r.Waiting = true
		r.Shield = true
		r.Bullet = war.Live
	}
	// Firing. Initiator side: live and shielded; responder side: dummy and
	// unshielded. A passing bullet occupying the slot postpones the shot.
	if l.Leader && !l.Waiting && l.Bullet == war.None {
		l.Bullet = war.Live
		l.Shield = true
		l.Waiting = true
	}
	if r.Leader && !r.Waiting && r.Bullet == war.None {
		r.Bullet = war.Dummy
		r.Shield = false
		r.Waiting = true
	}
	// Bullet movement and arrival.
	if l.Bullet != war.None {
		switch {
		case r.Leader:
			if l.Bullet == war.Live && !r.Shield {
				r.Leader = false
				r.Shield = false
			}
			r.Waiting = false
			l.Bullet = war.None
		case r.Bullet == war.None:
			r.Bullet = l.Bullet
			l.Bullet = war.None
		default:
			l.Bullet = war.None // absorbed by the bullet ahead
		}
	}
	return l, r
}

// IsLeader is the output function.
func IsLeader(s State) bool { return s.Leader }

// Codec is the fixed-width state codec for the interned engine's packed
// interner: leader, waiting and shield bits, then the two bullet bits —
// 5 bits.
func Codec() population.PackedCodec[State] {
	return population.PackedCodec[State]{
		Bits: 5,
		Enc: func(s State) uint64 {
			v := uint64(s.Bullet) << 3
			if s.Leader {
				v |= 1
			}
			if s.Waiting {
				v |= 1 << 1
			}
			if s.Shield {
				v |= 1 << 2
			}
			return v
		},
		Dec: func(v uint64) State {
			return State{
				Leader:  v&1 != 0,
				Waiting: v&(1<<1) != 0,
				Shield:  v&(1<<2) != 0,
				Bullet:  war.Bullet(v >> 3 & 3),
			}
		},
	}
}

// StateCount returns |Q| = 2·2·2·3 = 24 — constant.
func (p *Protocol) StateCount() uint64 { return 2 * 2 * 2 * 3 }

// RandomState samples uniformly from the state space.
func (p *Protocol) RandomState(rng *xrand.RNG) State {
	return State{
		Leader:  rng.Bool(),
		Waiting: rng.Bool(),
		Shield:  rng.Bool(),
		Bullet:  war.Bullet(rng.Intn(3)),
	}
}

// RandomConfig samples a full adversarial configuration.
func (p *Protocol) RandomConfig(rng *xrand.RNG, n int) []State {
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = p.RandomState(rng)
	}
	return cfg
}

// Stable reports the absorbing shape: exactly one leader, and either its
// single outstanding bullet is in flight (shielded if the bullet is live)
// or the ring is bullet-free with the leader ready to fire. The set is
// closed under the transition.
func Stable(cfg []State) bool {
	leaders, bullets, liveBullets := 0, 0, 0
	var lead State
	for _, s := range cfg {
		if s.Leader {
			leaders++
			lead = s
		}
		if s.Bullet != war.None {
			bullets++
			if s.Bullet == war.Live {
				liveBullets++
			}
		}
	}
	if leaders != 1 {
		return false
	}
	if bullets == 0 {
		return !lead.Waiting
	}
	if bullets > 1 {
		return false
	}
	return lead.Waiting && (liveBullets == 0 || lead.Shield)
}

// Runner couples the protocol with an engine and maintains the oracle's
// global predicates incrementally.
type Runner struct {
	proto   *Protocol
	eng     *population.Engine[State]
	leaders int
	bullets int
}

// NewRunner builds a runner for a directed ring of n agents.
func NewRunner(n int, rng *xrand.RNG) *Runner {
	ru := &Runner{proto: New()}
	trans := func(l, r State) (State, State) {
		return ru.proto.Step(l, r, Oracle{
			NoLeader: ru.leaders == 0,
			NoBullet: ru.bullets == 0,
		})
	}
	ru.eng = population.NewEngine(population.DirectedRing(n), trans, rng)
	ru.eng.SetObserver(func(_ int, before, after State) {
		if before.Leader != after.Leader {
			if after.Leader {
				ru.leaders++
			} else {
				ru.leaders--
			}
		}
		if (before.Bullet != war.None) != (after.Bullet != war.None) {
			if after.Bullet != war.None {
				ru.bullets++
			} else {
				ru.bullets--
			}
		}
	})
	ru.eng.TrackLeaders(IsLeader)
	return ru
}

// SetStates installs the initial configuration and recounts the oracle
// predicates.
func (ru *Runner) SetStates(cfg []State) {
	ru.eng.SetStates(cfg)
	ru.leaders, ru.bullets = 0, 0
	for _, s := range cfg {
		if s.Leader {
			ru.leaders++
		}
		if s.Bullet != war.None {
			ru.bullets++
		}
	}
}

// Engine exposes the underlying engine for stepping and inspection.
func (ru *Runner) Engine() *population.Engine[State] { return ru.eng }

// InternEnv adapts the runner's oracle to the interned execution layer
// (population.EnvSpec): the transition reads the oracle only through the
// two emptiness bits, so four transition tables cover every oracle view,
// and the per-transition leader/bullet count deltas replace the engine
// observer that maintains them on the generic path.
func (ru *Runner) InternEnv() *population.EnvSpec[State] {
	return &population.EnvSpec[State]{
		Keys: 4,
		Key: func() uint32 {
			var k uint32
			if ru.leaders == 0 {
				k |= 1
			}
			if ru.bullets == 0 {
				k |= 2
			}
			return k
		},
		Delta: func(lb, rb, la, ra State) uint32 {
			dl := btoi(la.Leader) - btoi(lb.Leader) + btoi(ra.Leader) - btoi(rb.Leader)
			db := btoi(la.Bullet != war.None) - btoi(lb.Bullet != war.None) +
				btoi(ra.Bullet != war.None) - btoi(rb.Bullet != war.None)
			return uint32(dl+2) | uint32(db+2)<<3
		},
		Apply: func(d uint32) {
			ru.leaders += int(d&7) - 2
			ru.bullets += int(d>>3&7) - 2
		},
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// StableSpec is the delta-decomposed form of Stable for incremental
// convergence tracking (population.RingTracker). Stable only constrains
// global counts — one leader, at most one bullet — and the unique leader's
// own flags, which become counts too: with exactly one leader,
// "the leader is waiting" is the same as "exactly one agent is a waiting
// leader". Every condition is an O(1) agent counter, so the verdict never
// scans the configuration. It equals Stable at every configuration.
func (p *Protocol) StableSpec() population.RingSpec[State] {
	const (
		agentLeader = 1 << iota
		agentWaitingLeader
		agentShieldedLeader
		agentBullet
		agentLiveBullet
	)
	return population.RingSpec[State]{
		AgentMask: func(s State) uint8 {
			var m uint8
			if s.Leader {
				m |= agentLeader
				if s.Waiting {
					m |= agentWaitingLeader
				}
				if s.Shield {
					m |= agentShieldedLeader
				}
			}
			if s.Bullet != war.None {
				m |= agentBullet
				if s.Bullet == war.Live {
					m |= agentLiveBullet
				}
			}
			return m
		},
		Converged: func(c *population.LocalCounts, _ []State) bool {
			if c.Agent[0] != 1 {
				return false
			}
			switch c.Agent[3] { // bullets in flight
			case 0:
				return c.Agent[1] == 0 // leader ready to fire
			case 1:
				return c.Agent[1] == 1 && (c.Agent[4] == 0 || c.Agent[2] == 1)
			default:
				return false
			}
		},
		AgentNames: []string{"leaders", "waiting_leaders", "shielded_leaders", "bullets", "live_bullets"},
	}
}
