package fj

import (
	"testing"

	"repro/internal/population"
	"repro/internal/war"
)

// allStates enumerates the full 24-state domain — a strict superset of
// every reachable configuration.
func allStates() []State {
	var out []State
	for f := 0; f < 8; f++ {
		for b := war.None; b <= war.Live; b++ {
			out = append(out, State{
				Leader:  f&1 != 0,
				Waiting: f&2 != 0,
				Shield:  f&4 != 0,
				Bullet:  b,
			})
		}
	}
	return out
}

// TestCodecRoundTrip pins the packed codec over the whole state domain:
// Dec(Enc(s)) == s, Enc stays under the declared width, and Enc is
// injective.
func TestCodecRoundTrip(t *testing.T) {
	c := Codec()
	if c.Bits < 1 || c.Bits > 63 {
		t.Fatalf("codec width %d outside [1, 63]", c.Bits)
	}
	seen := make(map[uint64]State)
	for _, s := range allStates() {
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: %+v and %+v both pack to %#x", prev, s, v)
		}
		seen[v] = s
	}
}

// TestPackedInternerCollisionFree feeds the full domain through the packed
// interner: one distinct ID per distinct state, stable on re-intern.
func TestPackedInternerCollisionFree(t *testing.T) {
	c := Codec()
	in := population.NewPackedInterner(c, population.DefaultMaxStates)
	states := allStates()
	ids := make([]uint32, len(states))
	for i, s := range states {
		id, ok := in.Intern(s)
		if !ok {
			t.Fatalf("intern %+v failed below cap", s)
		}
		if in.Value(id) != s || in.Packed(id) != c.Enc(s) {
			t.Fatalf("mint %d does not invert for %+v", id, s)
		}
		ids[i] = id
	}
	if in.Len() != len(states) {
		t.Fatalf("interner minted %d IDs for %d distinct states", in.Len(), len(states))
	}
	for i, s := range states {
		if id, _ := in.Intern(s); id != ids[i] {
			t.Fatalf("re-intern of %+v moved ID %d -> %d", s, ids[i], id)
		}
	}
}

// FuzzCodecRoundTrip drives the round trip from raw fuzzed bytes,
// canonicalized into the valid domain.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0))
	f.Add(uint8(7), uint8(2))
	f.Fuzz(func(t *testing.T, flags, bullet uint8) {
		s := State{
			Leader:  flags&1 != 0,
			Waiting: flags&2 != 0,
			Shield:  flags&4 != 0,
			Bullet:  war.Bullet(bullet % 3),
		}
		c := Codec()
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
	})
}
