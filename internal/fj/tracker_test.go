package fj

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/population/tracktest"
	"repro/internal/xrand"
)

// TestStableSpecExact pins the incremental tracker to the brute-force
// Stable scan: per-step agreement and identical hitting times, on rings up
// to the n=64 acceptance size. The engines come from NewRunner so the Ω?
// census keeps firing through the tracked path.
func TestStableSpecExact(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64} {
		for seed := uint64(1); seed <= 2; seed++ {
			if n == 64 && seed > 1 {
				continue // Θ(n³)-class: one seed at the top size
			}
			n, seed := n, seed
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				mk := func() *population.Engine[State] {
					ru := NewRunner(n, xrand.New(seed))
					ru.SetStates(New().RandomConfig(xrand.New(seed^0x5eed), n))
					return ru.Engine()
				}
				tracktest.Exact(t, mk, New().StableSpec(), Stable, 400*uint64(n)*uint64(n)*uint64(n))
			})
		}
	}
}
