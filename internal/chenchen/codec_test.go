package chenchen

import (
	"testing"

	"repro/internal/population"
	"repro/internal/war"
)

// allStates enumerates the full state domain — 2⁴ flag combinations × the
// 12 valid war states = 192 states, a strict superset of every reachable
// configuration, so exhaustive checks here subsume reachable-state
// coverage.
func allStates() []State {
	var out []State
	for f := 0; f < 16; f++ {
		for b := war.None; b <= war.Live; b++ {
			for sh := 0; sh < 2; sh++ {
				for sg := 0; sg < 2; sg++ {
					out = append(out, State{
						Leader:  f&1 != 0,
						Anchor:  f&2 != 0,
						Walker:  f&4 != 0,
						Retract: f&8 != 0,
						War:     war.State{Bullet: b, Shield: sh == 1, Signal: sg == 1},
					})
				}
			}
		}
	}
	return out
}

// TestCodecRoundTrip pins the packed codec over the whole state domain:
// Dec(Enc(s)) == s, Enc stays under the declared width, and Enc is
// injective (no two distinct states share a packed form).
func TestCodecRoundTrip(t *testing.T) {
	c := Codec()
	if c.Bits < 1 || c.Bits > 63 {
		t.Fatalf("codec width %d outside [1, 63]", c.Bits)
	}
	seen := make(map[uint64]State)
	for _, s := range allStates() {
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: %+v and %+v both pack to %#x", prev, s, v)
		}
		seen[v] = s
	}
}

// TestPackedInternerCollisionFree feeds the full domain through the packed
// interner and asserts collision-freedom end to end: one distinct ID per
// distinct state, stable on re-intern, with Value and Packed inverting the
// mint.
func TestPackedInternerCollisionFree(t *testing.T) {
	c := Codec()
	in := population.NewPackedInterner(c, population.DefaultMaxStates)
	states := allStates()
	ids := make([]uint32, len(states))
	for i, s := range states {
		id, ok := in.Intern(s)
		if !ok {
			t.Fatalf("intern %+v failed below cap", s)
		}
		if in.Value(id) != s {
			t.Fatalf("Value(%d) = %+v, interned %+v", id, in.Value(id), s)
		}
		if in.Packed(id) != c.Enc(s) {
			t.Fatalf("Packed(%d) = %#x, Enc = %#x", id, in.Packed(id), c.Enc(s))
		}
		ids[i] = id
	}
	if in.Len() != len(states) {
		t.Fatalf("interner minted %d IDs for %d distinct states", in.Len(), len(states))
	}
	for i, s := range states {
		if id, _ := in.Intern(s); id != ids[i] {
			t.Fatalf("re-intern of %+v moved ID %d -> %d", s, ids[i], id)
		}
	}
}

// FuzzCodecRoundTrip drives the round trip from raw fuzzed bytes,
// canonicalized into the valid domain.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0))
	f.Add(uint8(0xff), uint8(2))
	f.Add(uint8(0b1010), uint8(1))
	f.Fuzz(func(t *testing.T, flags, bullet uint8) {
		s := State{
			Leader:  flags&1 != 0,
			Anchor:  flags&2 != 0,
			Walker:  flags&4 != 0,
			Retract: flags&8 != 0,
			War: war.State{
				Bullet: war.Bullet(bullet % 3),
				Shield: flags&16 != 0,
				Signal: flags&32 != 0,
			},
		}
		c := Codec()
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
	})
}
