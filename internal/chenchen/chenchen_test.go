package chenchen

import (
	"testing"

	"repro/internal/war"
	"repro/internal/xrand"
)

func TestCleanRingSpawnsSerializedAttempt(t *testing.T) {
	p := New()
	l, r := p.Step(State{}, State{}, Census{})
	if !l.Anchor {
		t.Fatal("initiator did not plant the anchor")
	}
	if !r.Walker {
		t.Fatal("responder did not receive the walker")
	}
}

func TestDirtyRingDoesNotSpawn(t *testing.T) {
	p := New()
	l, r := p.Step(State{}, State{}, Census{Walkers: 1})
	if l.Anchor || r.Walker {
		t.Fatal("attempt spawned despite a walker in the census")
	}
}

func TestWalkerMovesClockwise(t *testing.T) {
	p := New()
	l, r := p.Step(State{Walker: true}, State{}, Census{Walkers: 1, Anchors: 1})
	if l.Walker || !r.Walker {
		t.Fatalf("walker did not move: l=%v r=%v", l.Walker, r.Walker)
	}
}

func TestWalkerAbortsAtLeader(t *testing.T) {
	p := New()
	l, r := p.Step(State{Walker: true}, State{Leader: true, War: war.State{Shield: true}},
		Census{Walkers: 1, Anchors: 1})
	if l.Walker {
		t.Fatal("walker survived meeting a leader")
	}
	if !l.Retract {
		t.Fatal("no retractor spawned")
	}
	if !r.Leader {
		t.Fatal("leader lost its bit in the abort")
	}
}

func TestWalkerReachingAnchorElects(t *testing.T) {
	p := New()
	l, r := p.Step(State{Walker: true}, State{Anchor: true}, Census{Walkers: 1, Anchors: 1})
	if !r.Leader {
		t.Fatal("full circumnavigation did not elect a leader")
	}
	if r.Anchor || l.Walker {
		t.Fatal("anchor/walker not consumed on election")
	}
	if !r.War.Shield {
		t.Fatal("new leader not armed")
	}
}

func TestRetractorClearsAnchor(t *testing.T) {
	p := New()
	l, r := p.Step(State{Anchor: true}, State{Retract: true}, Census{Anchors: 1, Retractors: 1})
	if l.Anchor {
		t.Fatal("retractor did not clear the anchor")
	}
	if !l.Retract || r.Retract {
		t.Fatal("retractor did not move left")
	}
}

func TestRetractorDiesAtLeader(t *testing.T) {
	p := New()
	l, r := p.Step(State{Leader: true, War: war.State{Shield: true}}, State{Retract: true},
		Census{Retractors: 1})
	if r.Retract {
		t.Fatal("retractor survived the leader")
	}
	if !l.Leader {
		t.Fatal("leader harmed by retractor")
	}
}

func TestWalkerRetractorAnnihilate(t *testing.T) {
	p := New()
	l, r := p.Step(State{Walker: true}, State{Retract: true},
		Census{Walkers: 1, Retractors: 1})
	if l.Walker || r.Retract || r.Walker || l.Retract {
		t.Fatalf("head-on meeting did not annihilate: l=%+v r=%+v", l, r)
	}
}

func TestLeaderShedsFlags(t *testing.T) {
	p := New()
	l, _ := p.Step(State{Leader: true, Anchor: true, Walker: true, War: war.State{Shield: true}},
		State{}, Census{Anchors: 1, Walkers: 1})
	if l.Anchor || l.Walker {
		t.Fatal("leader kept walker flags")
	}
}

func TestOrphanCleanup(t *testing.T) {
	p := New()
	// Orphan anchors self-clear.
	l, _ := p.Step(State{Anchor: true}, State{}, Census{Anchors: 1})
	if l.Anchor {
		t.Fatal("orphan anchor survived")
	}
	// Orphan retractors self-clear.
	_, r := p.Step(State{}, State{Retract: true}, Census{Retractors: 1})
	if r.Retract {
		t.Fatal("orphan retractor survived")
	}
	// A lone walker gets an anchor planted beneath it.
	_, r = p.Step(State{}, State{Walker: true}, Census{Walkers: 1})
	if !r.Anchor {
		t.Fatal("lone walker did not receive a finishing line")
	}
}

func TestConvergenceFromRandom(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		p := New()
		for seed := uint64(0); seed < 4; seed++ {
			ru := NewRunner(n, xrand.New(seed))
			rng := xrand.New(seed + 17)
			ru.SetStates(p.RandomConfig(rng, n))
			maxSteps := uint64(2_000_000)
			_, ok := ru.Engine().RunUntil(Stable, n, maxSteps)
			if !ok {
				t.Fatalf("n=%d seed=%d: not stable within %d steps (%d leaders)",
					n, seed, maxSteps, ru.Engine().LeaderCount())
			}
		}
	}
}

func TestConvergenceFromLeaderless(t *testing.T) {
	n := 8
	ru := NewRunner(n, xrand.New(5))
	ru.SetStates(make([]State, n))
	if _, ok := ru.Engine().RunUntil(Stable, n, 2_000_000); !ok {
		t.Fatal("leaderless start never stabilized")
	}
}

func TestStabilityIsAbsorbing(t *testing.T) {
	n := 6
	ru := NewRunner(n, xrand.New(6))
	ru.SetStates(make([]State, n))
	if _, ok := ru.Engine().RunUntil(Stable, n, 2_000_000); !ok {
		t.Fatal("did not stabilize")
	}
	changes := ru.Engine().LeaderChanges()
	for i := 0; i < 300000; i++ {
		ru.Engine().Step()
		if !Stable(ru.Engine().Config()) {
			t.Fatalf("left the stable set at extra step %d", i)
		}
	}
	if ru.Engine().LeaderChanges() != changes {
		t.Fatal("leader changed after stabilization")
	}
}

func TestNoFalseElectionWithLeader(t *testing.T) {
	// From a clean single-leader configuration, laps must keep aborting at
	// the leader: the leader set never changes.
	n := 8
	ru := NewRunner(n, xrand.New(7))
	cfg := make([]State, n)
	cfg[3] = State{Leader: true, War: war.State{Shield: true}}
	ru.SetStates(cfg)
	// The install itself is recorded as a leader-set change (the zero
	// config is leaderless); only interaction-driven changes count here.
	base := ru.Engine().LeaderChanges()
	ru.Engine().Run(500000)
	if got := ru.Engine().LeaderCount(); got != 1 {
		t.Fatalf("leader count drifted to %d", got)
	}
	if got := ru.Engine().LeaderChanges(); got != base {
		t.Fatalf("leader set changed %d times", got-base)
	}
}

func TestStableRejectsBadShapes(t *testing.T) {
	if Stable([]State{{}, {}}) {
		t.Fatal("no leader judged stable")
	}
	if Stable([]State{{Leader: true}, {Leader: true}}) {
		t.Fatal("two leaders judged stable")
	}
	// An anchor strictly ahead of the walker will cause a declaration.
	cfg := []State{
		{Leader: true},
		{Walker: true},
		{Anchor: true},
		{},
	}
	if Stable(cfg) {
		t.Fatal("anchor ahead of walker judged stable")
	}
	// The normal mid-lap shape is stable.
	cfg = []State{
		{Leader: true},
		{Anchor: true},
		{Walker: true},
		{},
	}
	if !Stable(cfg) {
		t.Fatal("normal mid-lap shape rejected")
	}
}

func TestStateCountConstant(t *testing.T) {
	if got := New().StateCount(); got != 192 {
		t.Fatalf("state count = %d, want 192", got)
	}
}

func BenchmarkStep(b *testing.B) {
	p := New()
	l := State{Walker: true}
	r := State{}
	env := Census{Walkers: 1, Anchors: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r = p.Step(l, r, env)
	}
}
