// Package chenchen implements a knowledge-free SS-LE ring protocol in the
// style of Chen and Chen (2019) — reference [11] of the paper and the
// third row of its Table 1: no assumption, O(1) states, exponential-class
// expected convergence.
//
// The original detects the absence of a leader by searching the ring for a
// cube www, which the cube-free Thue–Morse prefix embedded from a
// surviving leader makes impossible (see internal/thuemorse for the
// substrate and its structural facts). Implementing that search with O(1)
// states and no oracle is the core of [11] and the source of its
// super-exponential running time.
//
// Reconstruction (documented substitution): we keep the
// protocol's interface — no knowledge of n, O(1) states per agent — but
// replace the cube-free-string machinery with a circumnavigation walker
// serialized by a flag-census oracle (an Ω?-style eventual detector over
// the walker flags, computed by the runner): an anchor flag S is planted
// and a walker token circles clockwise; reaching a leader aborts the
// attempt (a retractor walks back clearing the anchor), while returning to
// an anchor proves the walker crossed every agent without meeting a leader
// — a sound leaderless certificate. Leader multiplicity is resolved by the
// Algorithm 5 war. The serialization oracle stands in for exactly the part
// of [11] whose oracle-free construction costs super-exponential time; the
// row's time class is therefore quoted from the original, not measured
// from this reconstruction (see the E1 section of cmd/sweep).
package chenchen

import (
	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

// State is the per-agent state: O(1) in n.
type State struct {
	Leader bool
	// Anchor is the S flag: the walker's starting line.
	Anchor bool
	// Walker is the clockwise circumnavigation token.
	Walker bool
	// Retract is the counter-clockwise cleanup token spawned when a walker
	// dies at a leader.
	Retract bool
	// War holds bullet/shield/signalB of the elimination war.
	War war.State
}

// Census is the oracle view: global counts of the three flag kinds,
// maintained by the runner. The zero census (“clean”) licenses a new
// attempt; degenerate mixes trigger orphan cleanup.
type Census struct {
	Anchors    int
	Walkers    int
	Retractors int
}

// Clean reports a flag-free ring.
func (c Census) Clean() bool { return c.Anchors == 0 && c.Walkers == 0 && c.Retractors == 0 }

// Protocol is the reconstruction.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Step is the transition function under the census view.
func (p *Protocol) Step(l, r State, env Census) (State, State) {
	// Leaders shed stray walker flags: an anchor or walker on a leader is
	// meaningless garbage.
	for _, v := range []*State{&l, &r} {
		if v.Leader {
			v.Anchor, v.Walker, v.Retract = false, false, false
		}
	}
	// Orphan cleanup, licensed by the census: anchors with no walker or
	// retractor in the ring can never be consumed — drop them; likewise
	// lone retractors. A lone walker gets an anchor planted under it so its
	// lap has a finishing line.
	switch {
	case env.Anchors > 0 && env.Walkers == 0 && env.Retractors == 0:
		l.Anchor, r.Anchor = false, false
	case env.Retractors > 0 && env.Walkers == 0 && env.Anchors == 0:
		l.Retract, r.Retract = false, false
	case env.Walkers > 0 && env.Anchors == 0 && env.Retractors == 0:
		if r.Walker {
			r.Anchor = true
		}
	}
	// A clean ring starts a fresh attempt: anchor at the initiator, walker
	// already one step ahead. The first spawn flips the census, so attempts
	// are serialized.
	if env.Clean() && !l.Leader && !r.Leader {
		l.Anchor = true
		r.Walker = true
	}
	// Walker movement (clockwise).
	if l.Walker {
		switch {
		case r.Leader:
			// A leader blocks the lap: the attempt is withdrawn by a
			// retractor that walks back clearing the anchor.
			l.Walker = false
			l.Retract = true
		case r.Anchor:
			// The walker has crossed every agent without meeting a leader:
			// a sound leaderless certificate. Elect here, armed.
			l.Walker = false
			r.Anchor = false
			r.Leader = true
			r.War = war.Arm()
		case r.Walker:
			l.Walker = false // rear walker absorbed
		case r.Retract:
			// A walker and a retractor meeting head-on annihilate; without
			// this, garbage pairs on a leaderless ring would chase each
			// other forever.
			l.Walker = false
			r.Retract = false
		default:
			l.Walker = false
			r.Walker = true
		}
	}
	// Retractor movement (counter-clockwise), clearing flags as it goes.
	if r.Retract {
		switch {
		case l.Leader:
			r.Retract = false // full lap completed
		default:
			if l.Anchor {
				l.Anchor = false
			}
			if l.Walker {
				l.Walker = false // zombie walker cleanup
			}
			r.Retract = false
			l.Retract = true
		}
	}
	war.Step(&l.Leader, &r.Leader, &l.War, &r.War)
	return l, r
}

// IsLeader is the output function.
func IsLeader(s State) bool { return s.Leader }

// Codec is the fixed-width state codec for the interned engine's packed
// interner: the four flag bits, then the four war bits — 8 bits.
func Codec() population.PackedCodec[State] {
	return population.PackedCodec[State]{
		Bits: 4 + war.PackBits,
		Enc: func(s State) uint64 {
			v := war.Pack(s.War) << 4
			if s.Leader {
				v |= 1
			}
			if s.Anchor {
				v |= 1 << 1
			}
			if s.Walker {
				v |= 1 << 2
			}
			if s.Retract {
				v |= 1 << 3
			}
			return v
		},
		Dec: func(v uint64) State {
			return State{
				Leader:  v&1 != 0,
				Anchor:  v&(1<<1) != 0,
				Walker:  v&(1<<2) != 0,
				Retract: v&(1<<3) != 0,
				War:     war.Unpack(v >> 4),
			}
		},
	}
}

// StateCount returns |Q| = 2⁴·12 = 192 — constant in n.
func (p *Protocol) StateCount() uint64 { return 2 * 2 * 2 * 2 * 3 * 2 * 2 }

// RandomState samples uniformly from the state space.
func (p *Protocol) RandomState(rng *xrand.RNG) State {
	return State{
		Leader:  rng.Bool(),
		Anchor:  rng.Bool(),
		Walker:  rng.Bool(),
		Retract: rng.Bool(),
		War: war.State{
			Bullet: war.Bullet(rng.Intn(3)),
			Shield: rng.Bool(),
			Signal: rng.Bool(),
		},
	}
}

// RandomConfig samples a full adversarial configuration.
func (p *Protocol) RandomConfig(rng *xrand.RNG, n int) []State {
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = p.RandomState(rng)
	}
	return cfg
}

// Stable reports the absorbing output shape: a unique leader with
// peaceful bullets, and walker flags restricted to the two phases of the
// steady attempt cycle —
//
//	(A) at most one walker with no retractor and any anchor at or behind
//	    the walker (leader-relative), or
//	(B) no walker with at most one retractor,
//
// with at most one anchor either way. Within this set no declaration can
// ever fire, so the leader output never changes; the set is closed under
// the transition (verified exhaustively at n=3 by
// internal/modelcheck.TestChenChenExhaustive, which caught a
// walker-plus-stale-retractor leak in a first, naive version of this
// predicate).
func Stable(cfg []State) bool {
	n := len(cfg)
	k := -1
	anchors, walkers, retractors := 0, 0, 0
	anchorAt, walkerAt := -1, -1
	for i, s := range cfg {
		if s.Leader {
			if k >= 0 {
				return false
			}
			k = i
		}
		if s.Anchor {
			anchors++
			anchorAt = i
		}
		if s.Walker {
			walkers++
			walkerAt = i
		}
		if s.Retract {
			retractors++
		}
	}
	if k < 0 || anchors > 1 {
		return false
	}
	switch {
	case walkers == 0 && retractors <= 1:
		// Phase B: retraction or idle; nothing can declare.
	case walkers == 1 && retractors == 0:
		// Phase A: a lap in progress; the anchor must not lie ahead of the
		// walker on its way to the leader.
		if anchors == 1 {
			pa := ((anchorAt-k)%n + n) % n
			pw := ((walkerAt-k)%n + n) % n
			if pa > pw {
				return false
			}
		}
	default:
		return false
	}
	leaders := make([]bool, n)
	states := make([]war.State, n)
	for i, s := range cfg {
		leaders[i] = s.Leader
		states[i] = s.War
	}
	return war.AllLiveBulletsPeaceful(leaders, states)
}

// Runner couples the protocol with an engine and maintains the census.
type Runner struct {
	proto  *Protocol
	eng    *population.Engine[State]
	census Census
}

// NewRunner builds a runner for a directed ring of n agents.
func NewRunner(n int, rng *xrand.RNG) *Runner {
	ru := &Runner{proto: New()}
	trans := func(l, r State) (State, State) {
		return ru.proto.Step(l, r, ru.census)
	}
	ru.eng = population.NewEngine(population.DirectedRing(n), trans, rng)
	ru.eng.SetObserver(func(_ int, before, after State) {
		ru.census.Anchors += btoi(after.Anchor) - btoi(before.Anchor)
		ru.census.Walkers += btoi(after.Walker) - btoi(before.Walker)
		ru.census.Retractors += btoi(after.Retract) - btoi(before.Retract)
	})
	ru.eng.TrackLeaders(IsLeader)
	return ru
}

// SetStates installs the initial configuration and recounts the census.
func (ru *Runner) SetStates(cfg []State) {
	ru.eng.SetStates(cfg)
	ru.census = Census{}
	for _, s := range cfg {
		ru.census.Anchors += btoi(s.Anchor)
		ru.census.Walkers += btoi(s.Walker)
		ru.census.Retractors += btoi(s.Retract)
	}
}

// Engine exposes the underlying engine.
func (ru *Runner) Engine() *population.Engine[State] { return ru.eng }

// InternEnv adapts the runner's flag census to the interned execution
// layer (population.EnvSpec). The transition reads the census only through
// the sign pattern of its three counters — Clean() and the orphan-cleanup
// guards are all emptiness tests — so eight transition tables cover every
// census view, and per-transition flag-count deltas replace the engine
// observer that maintains the census on the generic path.
func (ru *Runner) InternEnv() *population.EnvSpec[State] {
	return &population.EnvSpec[State]{
		Keys: 8,
		Key: func() uint32 {
			var k uint32
			if ru.census.Anchors > 0 {
				k |= 1
			}
			if ru.census.Walkers > 0 {
				k |= 2
			}
			if ru.census.Retractors > 0 {
				k |= 4
			}
			return k
		},
		Delta: func(lb, rb, la, ra State) uint32 {
			da := btoi(la.Anchor) - btoi(lb.Anchor) + btoi(ra.Anchor) - btoi(rb.Anchor)
			dw := btoi(la.Walker) - btoi(lb.Walker) + btoi(ra.Walker) - btoi(rb.Walker)
			dr := btoi(la.Retract) - btoi(lb.Retract) + btoi(ra.Retract) - btoi(rb.Retract)
			return uint32(da+2) | uint32(dw+2)<<3 | uint32(dr+2)<<6
		},
		Apply: func(d uint32) {
			ru.census.Anchors += int(d&7) - 2
			ru.census.Walkers += int(d>>3&7) - 2
			ru.census.Retractors += int(d>>6&7) - 2
		},
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// StableSpec is the delta-decomposed form of Stable for incremental
// convergence tracking (population.RingTracker). The phase structure of
// the steady attempt cycle is pure counting — leaders, anchors, walkers,
// retractors, live bullets are all O(1) agent counters — and the phase-A
// ordering "the anchor must not lie ahead of the walker" reads the
// tracker's per-channel index sums, which name the unique leader, anchor
// and walker in O(1). The only remaining non-local residual is C_PB war
// peacefulness, scanned solely when live bullets exist and every counter
// already passes — rare before convergence and transient after it. The
// verdict equals Stable at every configuration.
func (p *Protocol) StableSpec() population.RingSpec[State] {
	const (
		agentLeader = 1 << iota
		agentAnchor
		agentWalker
		agentRetract
		agentLiveBullet
	)
	return population.RingSpec[State]{
		AgentMask: func(s State) uint8 {
			var m uint8
			if s.Leader {
				m |= agentLeader
			}
			if s.Anchor {
				m |= agentAnchor
			}
			if s.Walker {
				m |= agentWalker
			}
			if s.Retract {
				m |= agentRetract
			}
			if s.War.Bullet == war.Live {
				m |= agentLiveBullet
			}
			return m
		},
		Gate: func(c *population.LocalCounts) bool {
			if c.Agent[0] != 1 || c.Agent[1] > 1 {
				return false
			}
			walkers, retractors := c.Agent[2], c.Agent[3]
			return (walkers == 1 && retractors == 0) || (walkers == 0 && retractors <= 1)
		},
		Residual: func(c *population.LocalCounts, cfg []State) (bool, population.Witness) {
			n := len(cfg)
			k := c.AgentPos[0] // the unique leader's index
			if c.Agent[2] == 1 && c.Agent[3] == 0 && c.Agent[1] == 1 {
				pa := ((c.AgentPos[1]-k)%n + n) % n // the unique anchor
				pw := ((c.AgentPos[2]-k)%n + n) % n // the unique walker
				if pa > pw {
					// Leader-relative ordering of three single points; it
					// re-evaluates in O(1), so the trivial witness (re-check
					// after every interaction) costs nothing. It lives here
					// rather than in the gate only because it needs n.
					return false, population.WholeRing(n)
				}
			}
			if c.Agent[4] == 0 {
				return true, population.Witness{}
			}
			if ok, off := war.PeacefulPrefix(cfg, k, func(s State) war.State { return s.War }); !ok {
				return false, population.IntervalWitness(n, k, off, k)
			}
			return true, population.Witness{}
		},
		Converged: func(c *population.LocalCounts, cfg []State) bool {
			if c.Agent[0] != 1 || c.Agent[1] > 1 {
				return false
			}
			walkers, retractors := c.Agent[2], c.Agent[3]
			phaseA := walkers == 1 && retractors == 0
			if !phaseA && !(walkers == 0 && retractors <= 1) {
				return false
			}
			n := len(cfg)
			k := c.AgentPos[0] // the unique leader's index
			if phaseA && c.Agent[1] == 1 {
				pa := ((c.AgentPos[1]-k)%n + n) % n // the unique anchor
				pw := ((c.AgentPos[2]-k)%n + n) % n // the unique walker
				if pa > pw {
					return false
				}
			}
			if c.Agent[4] == 0 {
				return true
			}
			return war.PeacefulWithLeader(cfg, k, func(s State) war.State { return s.War })
		},
		AgentNames: []string{"leaders", "anchors", "walkers", "retractors", "live_bullets"},
	}
}
