package chenchen

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/population/tracktest"
	"repro/internal/xrand"
)

// TestStableSpecExact pins the incremental tracker to the brute-force
// Stable scan. Small sizes run to convergence; the exponential-class
// reconstruction makes full convergence at the larger acceptance sizes
// impractical, so n=16 and n=64 verify per-step agreement over a bounded
// prefix instead — exactness is a per-step property, not a convergence
// property. The engines come from NewRunner so the flag census keeps
// firing through the tracked path.
func TestStableSpecExact(t *testing.T) {
	cases := []struct {
		n        int
		maxSteps uint64
	}{
		{4, 2000 * 4 * 4 * 4},
		{8, 2000 * 8 * 8 * 8},
		{16, 200_000},
		{64, 20_000},
	}
	for _, c := range cases {
		for seed := uint64(1); seed <= 2; seed++ {
			if c.n >= 16 && seed > 1 {
				continue
			}
			c, seed := c, seed
			t.Run(fmt.Sprintf("n=%d/seed=%d", c.n, seed), func(t *testing.T) {
				mk := func() *population.Engine[State] {
					ru := NewRunner(c.n, xrand.New(seed))
					ru.SetStates(New().RandomConfig(xrand.New(seed^0x5eed), c.n))
					return ru.Engine()
				}
				tracktest.Exact(t, mk, New().StableSpec(), Stable, c.maxSteps)
			})
		}
	}
}
