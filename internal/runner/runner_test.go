package runner

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapMatchesSerialLoop(t *testing.T) {
	fn := func(i int) uint64 { return DeriveSeed(42, i) * uint64(i+1) }
	want := make([]uint64, 100)
	for i := range want {
		want[i] = fn(i)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), len(want), fn, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyAndSmall(t *testing.T) {
	got, err := Map(context.Background(), 0, func(i int) int { return i }, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
	got, err = Map(context.Background(), 1, func(i int) int { return i + 7 }, Options{Workers: 32})
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("single item: %v, %v", got, err)
	}
}

func TestMapCancellationStopsWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const total = 1000
	_, err := Map(ctx, total, func(i int) int {
		if started.Add(1) == 3 {
			cancel()
		}
		return i
	}, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers may finish the item they already hold, but must not start
	// fresh ones after cancellation: far fewer than total run.
	if n := started.Load(); n >= total {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestMapPanicDoesNotDeadlock(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), 50, func(i int) int {
			if i == 10 {
				panic("boom")
			}
			return i
		}, Options{Workers: 4})
		done <- err
	}()
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
		if pe.Index != 10 || pe.Value != "boom" {
			t.Fatalf("PanicError = %+v", pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("panic stack not captured")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Map deadlocked after a trial panic")
	}
}

func TestMapPanicAbandonsRemainingItems(t *testing.T) {
	var ran atomic.Int64
	const total = 10000
	_, err := Map(context.Background(), total, func(i int) int {
		ran.Add(1)
		if i == 0 {
			panic("early")
		}
		return i
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n >= total {
		t.Fatalf("all %d items ran despite an early panic", n)
	}
}

func TestForEachProgress(t *testing.T) {
	var calls []int
	var sum atomic.Int64
	err := ForEach(context.Background(), 20, func(i int) {
		sum.Add(int64(i))
	}, Options{
		Workers:  4,
		Progress: func(done, total int) { calls = append(calls, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 190 {
		t.Fatalf("sum = %d, want 190", sum.Load())
	}
	if len(calls) != 20 {
		t.Fatalf("progress called %d times, want 20", len(calls))
	}
	seen := make(map[int]bool)
	for _, c := range calls {
		if c < 1 || c > 20 || seen[c] {
			t.Fatalf("bad progress sequence: %v", calls)
		}
		seen[c] = true
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for base := uint64(0); base < 4; base++ {
		for i := 0; i < 1000; i++ {
			s := DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: base=%d i=%d repeats value %d", base, i, prev)
			}
			seen[s] = i
		}
	}
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed not deterministic")
	}
}

// TestSpeedupOnMultiCore checks the point of the whole package: on a
// machine with 4+ cores, fanning CPU-bound trials across the pool must beat
// a single worker by a wide margin. Timing-sensitive, so skipped under
// -short and on small machines.
func TestSpeedupOnMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if os.Getenv("CI") != "" {
		// Shared CI runners execute other packages' tests concurrently with
		// this one, so the serial/parallel wall-clock ratio is noise there.
		t.Skip("timing test skipped on CI runners")
	}
	cores := runtime.NumCPU()
	if cores < 4 {
		t.Skipf("needs 4+ cores, have %d", cores)
	}
	spin := func(i int) uint64 {
		// ~10ms of pure CPU work per trial, seeded by the index.
		z := DeriveSeed(9, i)
		for k := 0; k < 4_000_000; k++ {
			z = z*6364136223846793005 + 1442695040888963407
		}
		return z
	}
	const trials = 64
	measure := func(workers int) (time.Duration, []uint64) {
		start := time.Now()
		out, err := Map(context.Background(), trials, spin, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), out
	}
	serialDur, serialOut := measure(1)
	parDur, parOut := measure(0) // all cores
	for i := range serialOut {
		if serialOut[i] != parOut[i] {
			t.Fatalf("trial %d result differs between worker counts", i)
		}
	}
	speedup := float64(serialDur) / float64(parDur)
	t.Logf("serial %v, parallel %v on %d cores: %.2fx", serialDur, parDur, cores, speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx < 2x on %d cores", speedup, cores)
	}
}

func TestWorkersDefaulting(t *testing.T) {
	if w := (Options{}).workers(100); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := (Options{Workers: 8}).workers(3); w != 3 {
		t.Fatalf("workers not capped at total: %d", w)
	}
	if w := (Options{Workers: -5}).workers(2); w < 1 || w > 2 {
		t.Fatalf("negative workers handled badly: %d", w)
	}
}
