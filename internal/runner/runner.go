// Package runner is the batch trial-execution engine: it fans a fixed
// number of independent, index-addressed work items out across a bounded
// worker pool and collects their results in index order.
//
// Every trial-driving layer of the repository — harness.Sweep, the cmd/sweep
// experiment sections, cmd/ringsim repetitions, cmd/table1 and the
// benchmarks — routes its per-trial loops through this package. Trials are
// pure functions of their index (seeds are derived deterministically from
// the index by the caller, or via DeriveSeed), so the result slice is
// bit-for-bit identical whatever the worker count: parallelism changes only
// wall-clock time, never the numbers in a report.
//
// Memory stays bounded: the pool holds one pre-allocated result slot per
// item and hands indices to workers through an atomic counter, so there is
// no job queue to grow. Cancellation is context-based, and a panic in one
// trial is captured and returned as a *PanicError instead of deadlocking the
// pool or killing the process.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a batch execution.
type Options struct {
	// Workers is the worker-pool size. Values <= 0 select
	// runtime.GOMAXPROCS(0), i.e. one worker per available core.
	Workers int
	// Progress, when non-nil, is called after every completed item with the
	// number done so far and the total. Calls are serialized (never
	// concurrent) but may come from any worker goroutine.
	Progress func(done, total int)
}

func (o Options) workers(total int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > total {
		w = total
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError wraps a panic recovered from a trial function.
type PanicError struct {
	// Index is the item whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v", e.Index, e.Value)
}

// Map executes fn(i) for every i in [0, total) across a worker pool and
// returns the results indexed by i. It is the deterministic parallel
// equivalent of
//
//	out := make([]T, total)
//	for i := range out { out[i] = fn(i) }
//
// fn must be safe for concurrent invocation on distinct indices and should
// depend only on i (derive any randomness from a per-index seed).
//
// If ctx is cancelled, no new items are started and Map returns ctx.Err()
// along with the partial results: slots whose fn never ran (or was running
// when another item failed) hold the zero value of T. If an fn panics, the
// panic is recovered, remaining items are abandoned, and Map returns a
// *PanicError describing the first panic observed.
func Map[T any](ctx context.Context, total int, fn func(i int) T, opts Options) ([]T, error) {
	out := make([]T, total)
	if total == 0 {
		return out, ctx.Err()
	}

	var (
		next     atomic.Int64 // next index to hand out
		done     atomic.Int64 // completed items
		mu       sync.Mutex   // serializes Progress and first-error capture
		firstErr error
		failed   atomic.Bool // fast-path flag: some trial panicked
		wg       sync.WaitGroup
	)

	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				stack := make([]byte, 64<<10)
				stack = stack[:runtime.Stack(stack, false)]
				failed.Store(true)
				mu.Lock()
				if firstErr == nil {
					firstErr = &PanicError{Index: i, Value: v, Stack: stack}
				}
				mu.Unlock()
			}
		}()
		out[i] = fn(i)
		if opts.Progress != nil {
			// The count is taken inside the lock so successive callbacks
			// observe strictly increasing done values.
			mu.Lock()
			opts.Progress(int(done.Add(1)), total)
			mu.Unlock()
		}
	}

	workers := opts.workers(total)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// ForEach is Map for side-effecting items with no result value.
func ForEach(ctx context.Context, total int, fn func(i int), opts Options) error {
	_, err := Map(ctx, total, func(i int) struct{} {
		fn(i)
		return struct{}{}
	}, opts)
	return err
}

// DeriveSeed deterministically derives an RNG seed for item i of a batch
// from a base seed, using the SplitMix64 finalizer so that neighboring
// indices yield statistically independent streams. Callers that parallelize
// a loop previously sharing one sequential RNG switch to per-item seeds via
// this function, making each item a pure function of its index.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
