package repro

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// quantileSubBuckets is the log-histogram resolution: buckets per factor
// of two. 16 sub-buckets bound the relative quantile error by
// 2^(1/32) − 1 ≈ 2.2% at a few hundred live buckets per cell even for
// step counts spanning 1 … 2^60.
const quantileSubBuckets = 16

// qhist is a fixed-boundary logarithmic histogram: order-independent,
// mergeable by bucket-wise addition, O(log range) memory. Values ≤ 0
// (possible for derived observables) share one exact-zero bucket.
type qhist struct {
	count   uint64
	zeros   uint64
	sum     float64
	min     float64
	max     float64
	buckets map[int]uint64
}

func newQhist() *qhist {
	return &qhist{min: math.Inf(1), max: math.Inf(-1), buckets: make(map[int]uint64)}
}

func (h *qhist) add(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v <= 0 {
		h.zeros++
		return
	}
	h.buckets[int(math.Floor(math.Log2(v)*quantileSubBuckets))]++
}

func (h *qhist) merge(o *qhist) {
	h.count += o.count
	h.zeros += o.zeros
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// quantile returns the q-quantile estimate by nearest-rank walk over the
// fixed buckets; representatives are the geometric bucket midpoints,
// clamped into the observed [min, max] so estimates never leave the
// data's range.
func (h *qhist) quantile(q float64) (float64, bool) {
	if h.count == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	cum := h.zeros
	if cum >= rank {
		return h.min, true // all of the ≤0 mass sits at or below min
	}
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		cum += h.buckets[i]
		if cum >= rank {
			rep := math.Exp2((float64(i) + 0.5) / quantileSubBuckets)
			if rep < h.min {
				rep = h.min
			}
			if rep > h.max {
				rep = h.max
			}
			return rep, true
		}
	}
	return h.max, true
}

// quantCell keys one histogram: a (protocol, size) cell × observable.
type quantCell struct {
	Protocol string
	N        int
	Obs      string
}

// QuantileSink is streaming quantile aggregation as a Sink: it distills
// the record stream into per-(protocol, n, observable) p50/p90/p99
// tables in O(log valueRange) memory per cell, never holding records —
// the percentile path for Stream-mode sweeps and fabric workers at
// unbounded trial counts, where the in-memory Report (and its exact
// Summaries) is off the table.
//
// The estimator is a fixed-boundary logarithmic histogram (16 buckets
// per factor of two), which buys three properties exact reservoirs and
// t-digests give up: estimates are deterministic, independent of record
// arrival order (Sinks see completion order, which varies with the
// worker count — a same-spec sweep must render the same table at any
// parallelism), and two sinks merge losslessly by bucket addition (the
// fabric merges worker-side tables without re-reading records). Relative
// quantile error is bounded by 2^(1/32) − 1 ≈ 2.2%.
//
// Record and Close are safe for concurrent use.
type QuantileSink struct {
	mu          sync.Mutex
	observables []string
	cells       map[quantCell]*qhist
}

// NewQuantileSink returns a sink aggregating the named record
// observables; none selects "steps". Scalar observables (steps,
// stabilized, converged) are derived from the record even when a plain
// protocol produced no observables map.
func NewQuantileSink(observables ...string) *QuantileSink {
	if len(observables) == 0 {
		observables = []string{"steps"}
	}
	return &QuantileSink{
		observables: append([]string(nil), observables...),
		cells:       make(map[quantCell]*qhist),
	}
}

// observe extracts one observable from a record, falling back to the
// scalar fields for plain records.
func observe(rec TrialRecord, obs string) (float64, bool) {
	if v, ok := rec.Observables[obs]; ok {
		return v, true
	}
	switch obs {
	case "steps":
		return float64(rec.Steps), true
	case "stabilized":
		return float64(rec.Stabilized), true
	case "converged":
		if rec.Converged {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Record implements Sink.
func (s *QuantileSink) Record(rec TrialRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, obs := range s.observables {
		v, ok := observe(rec, obs)
		if !ok {
			continue
		}
		key := quantCell{rec.Protocol, rec.N, obs}
		h := s.cells[key]
		if h == nil {
			h = newQhist()
			s.cells[key] = h
		}
		h.add(v)
	}
	return nil
}

// Close implements Sink; the histograms need no flushing.
func (s *QuantileSink) Close() error { return nil }

// Quantile returns the q-quantile estimate of one cell's observable and
// whether any value was recorded for it.
func (s *QuantileSink) Quantile(protocol string, n int, obs string, q float64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.cells[quantCell{protocol, n, obs}]
	if !ok {
		return 0, false
	}
	return h.quantile(q)
}

// Count returns the number of values recorded for one cell's observable.
func (s *QuantileSink) Count(protocol string, n int, obs string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.cells[quantCell{protocol, n, obs}]
	if !ok {
		return 0
	}
	return h.count
}

// Merge folds another sink's histograms into this one, bucket-wise —
// exact, not an approximation of an approximation: merging per-shard
// sinks yields the histogram a single sink over the full stream would
// hold.
func (s *QuantileSink) Merge(o *QuantileSink) {
	o.mu.Lock()
	theirs := make(map[quantCell]*qhist, len(o.cells))
	for k, h := range o.cells {
		theirs[k] = h
	}
	o.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, h := range theirs {
		mine := s.cells[k]
		if mine == nil {
			mine = newQhist()
			s.cells[k] = mine
		}
		mine.merge(h)
	}
}

// Table renders the aggregation as a deterministic markdown table, rows
// sorted by (protocol, n, observable): count, mean, p50/p90/p99
// estimates and the exact max.
func (s *QuantileSink) Table() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]quantCell, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Protocol != keys[j].Protocol {
			return keys[i].Protocol < keys[j].Protocol
		}
		if keys[i].N != keys[j].N {
			return keys[i].N < keys[j].N
		}
		return keys[i].Obs < keys[j].Obs
	})
	var b strings.Builder
	b.WriteString("| protocol | n | observable | count | mean | p50 | p90 | p99 | max |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, k := range keys {
		h := s.cells[k]
		p50, _ := h.quantile(0.50)
		p90, _ := h.quantile(0.90)
		p99, _ := h.quantile(0.99)
		fmt.Fprintf(&b, "| %s | %d | %s | %d | %.4g | %.4g | %.4g | %.4g | %.4g |\n",
			k.Protocol, k.N, k.Obs, h.count, h.sum/float64(h.count), p50, p90, p99, h.max)
	}
	return b.String()
}
