package repro

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// Summary holds the descriptive statistics of one cell's converged trials.
// A Summary with Count zero — every trial failed, or the cell was skipped —
// has no statistics at all: JSON renders its fields as explicit nulls and
// CSV as empty fields, never as stale zeros a reader could mistake for
// measured values.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// summaryJSON is the wire form of Summary: pointer fields express "no
// data" as null.
type summaryJSON struct {
	Count  int      `json:"count"`
	Mean   *float64 `json:"mean"`
	Std    *float64 `json:"std"`
	Min    *float64 `json:"min"`
	Median *float64 `json:"median"`
	P90    *float64 `json:"p90"`
	Max    *float64 `json:"max"`
}

// MarshalJSON renders a Count-zero summary with null statistics.
func (s Summary) MarshalJSON() ([]byte, error) {
	out := summaryJSON{Count: s.Count}
	if s.Count > 0 {
		out.Mean, out.Std, out.Min = &s.Mean, &s.Std, &s.Min
		out.Median, out.P90, out.Max = &s.Median, &s.P90, &s.Max
	}
	return json.Marshal(out)
}

// UnmarshalJSON accepts both the null form and plain numbers.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var in summaryJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*s = Summary{Count: in.Count}
	deref := func(p *float64) float64 {
		if p == nil {
			return 0
		}
		return *p
	}
	s.Mean, s.Std, s.Min = deref(in.Mean), deref(in.Std), deref(in.Min)
	s.Median, s.P90, s.Max = deref(in.Median), deref(in.P90), deref(in.Max)
	return nil
}

// ReportCell aggregates the trials of one (protocol, size) pair: every
// per-trial result plus summaries of convergence and stabilization steps
// over the converged trials.
type ReportCell struct {
	N          int           `json:"n"`
	Trials     []TrialResult `json:"trials"`
	Steps      Summary       `json:"steps"`
	Stabilized Summary       `json:"stabilized"`
	Failures   int           `json:"failures"`
	// Metrics holds the values of the experiment's Metric aggregations,
	// keyed by metric label. Only metrics with at least one sample in the
	// cell appear; absent without configured metrics.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ReportRow is one protocol's line of the experiment: its Table 1
// metadata, the exact state count at the experiment's reference size (the
// last requested size), one cell per requested size (empty cells — no
// trials — stand in for sizes skipped by MaxSizeFor, keeping Cells
// positionally aligned with Report.Sizes), and the fitted power-law
// exponent of mean convergence steps against n. ExponentOK is false when
// fewer than two cells had data — distinguishing "no data" from a genuine
// zero fit.
type ReportRow struct {
	Protocol   ProtocolInfo `json:"protocol"`
	States     uint64       `json:"states"`
	Cells      []ReportCell `json:"cells"`
	Exponent   float64      `json:"exponent"`
	ExponentOK bool         `json:"exponent_ok"`
}

// Report is the structured outcome of an Experiment run. It is fully
// deterministic for fixed seeds: the same experiment yields the same
// Report — and the same rendered bytes — whatever the worker count.
type Report struct {
	Sizes    []int       `json:"sizes"`
	Trials   int         `json:"trials"`
	Scenario Scenario    `json:"scenario"`
	Rows     []ReportRow `json:"rows"`
	// Metrics lists the labels of the experiment's configured Metric
	// aggregations, in configuration order; per-cell values live in
	// ReportCell.Metrics. Absent without configured metrics.
	Metrics []string `json:"metrics,omitempty"`
}

// Exponents maps each protocol name to its fitted scaling exponent (0 when
// the row had too little data to fit; check ReportRow.ExponentOK to
// distinguish).
func (r *Report) Exponents() map[string]float64 {
	out := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		out[row.Protocol.Name] = row.Exponent
	}
	return out
}

// Markdown renders the report in the repository's Table 1 layout: the
// steps-per-size table, the summary table (assumption, paper bounds,
// fitted exponent, exact state counts), and the trial count.
func (r *Report) Markdown() string {
	names := make([]string, len(r.Rows))
	rows := make([]harness.Row, len(r.Rows))
	cells := make([][]harness.Cell, len(r.Rows))
	for i, row := range r.Rows {
		names[i] = row.Protocol.Name
		rows[i] = harness.Row{
			Name:        row.Protocol.Name,
			Assumption:  row.Protocol.Assumption,
			PaperTime:   row.Protocol.PaperTime,
			PaperStates: row.Protocol.PaperStates,
			States:      row.States,
		}
		cells[i] = harnessCells(row.Cells)
	}
	statesAt := 0
	if len(r.Sizes) > 0 {
		statesAt = r.Sizes[len(r.Sizes)-1]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### Mean convergence steps (%s)\n\n", r.Scenario.Init.describe())
	b.WriteString(harness.Table(names, cells, r.Sizes))
	b.WriteString("\n### Table 1 reproduction\n\n")
	b.WriteString(harness.SummaryTable(rows, cells, statesAt))
	fmt.Fprintf(&b, "\nTrials per cell: %d.\n", r.Trials)
	for _, label := range r.Metrics {
		b.WriteString(r.metricTable(label))
	}
	return b.String()
}

// metricTable renders one metric as a protocol × size table; cells without
// the metric render as missing.
func (r *Report) metricTable(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n### Metric: %s\n\n", label)
	b.WriteString("| protocol |")
	for _, n := range r.Sizes {
		fmt.Fprintf(&b, " n=%d |", n)
	}
	b.WriteString("\n|---|")
	b.WriteString(strings.Repeat("---|", len(r.Sizes)))
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s |", row.Protocol.Name)
		for i := range r.Sizes {
			if i >= len(row.Cells) {
				b.WriteString(" — |")
				continue
			}
			if v, ok := row.Cells[i].Metrics[label]; ok {
				fmt.Fprintf(&b, " %.4g |", v)
			} else {
				b.WriteString(" — |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// JSON renders the report as indented JSON — the machine-readable CI
// artifact form.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSV renders the per-cell summaries as CSV, one record per (protocol,
// size) cell — the form BENCH trajectories and spreadsheets consume. The
// exponent column repeats the row's fit and is empty when the row had too
// little data.
func (r *Report) CSV() ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	header := []string{
		"protocol", "n", "trials", "failures",
		"steps_mean", "steps_median", "steps_p90", "steps_min", "steps_max", "steps_std",
		"stabilized_mean", "exponent",
	}
	if err := w.Write(header); err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		exp := ""
		if row.ExponentOK {
			exp = formatFloat(row.Exponent)
		}
		for _, c := range row.Cells {
			if len(c.Trials) == 0 {
				continue // a size skipped by MaxSizeFor — nothing was run
			}
			record := []string{
				row.Protocol.Name,
				strconv.Itoa(c.N),
				strconv.Itoa(len(c.Trials)),
				strconv.Itoa(c.Failures),
				summaryField(c.Steps, c.Steps.Mean),
				summaryField(c.Steps, c.Steps.Median),
				summaryField(c.Steps, c.Steps.P90),
				summaryField(c.Steps, c.Steps.Min),
				summaryField(c.Steps, c.Steps.Max),
				summaryField(c.Steps, c.Steps.Std),
				summaryField(c.Stabilized, c.Stabilized.Mean),
				exp,
			}
			if err := w.Write(record); err != nil {
				return nil, err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// summaryField renders one statistic of s, or an empty field when the
// summary has no data (a failure-only cell) — the CSV form of "null".
func summaryField(s Summary, v float64) string {
	if s.Count == 0 {
		return ""
	}
	return formatFloat(v)
}
