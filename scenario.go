package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/population"
)

// InitClass selects the adversarial initial-configuration family of a
// trial. The zero value is InitRandom, so a zero Scenario is the standard
// random-adversary experiment. Classes beyond InitRandom model the paper's
// hand-crafted hard instances and are supported by P_PL only; the
// baselines reject them in Validate.
type InitClass int

const (
	// InitRandom samples every agent uniformly from the full state space.
	InitRandom InitClass = iota
	// InitNoLeader is the hardest detection case: aligned distances, no
	// leader, all agents already in detection mode.
	InitNoLeader
	// InitAllLeaders starts with every agent an armed leader.
	InitAllLeaders
	// InitCorrupted perturbs a safe configuration at n/4 random agents.
	InitCorrupted
	// InitNoLeaderCold is InitNoLeader with all clocks at zero: the
	// population must first climb to detection mode via the lottery-game
	// clocks, so convergence is dominated by κ_max (the E10 ablation).
	InitNoLeaderCold
)

var initClassNames = map[InitClass]string{
	InitRandom:       "random",
	InitNoLeader:     "noleader",
	InitAllLeaders:   "allleaders",
	InitCorrupted:    "corrupted",
	InitNoLeaderCold: "noleadercold",
}

// String returns the parseable name of the class ("random", "noleader",
// "allleaders", "corrupted", "noleadercold").
func (c InitClass) String() string {
	if name, ok := initClassNames[c]; ok {
		return name
	}
	return fmt.Sprintf("InitClass(%d)", int(c))
}

// describe is the human-readable form used in report headings.
func (c InitClass) describe() string {
	switch c {
	case InitNoLeader:
		return "leaderless aligned starts"
	case InitAllLeaders:
		return "all-leaders starts"
	case InitCorrupted:
		return "corrupted-perfect starts"
	case InitNoLeaderCold:
		return "cold leaderless starts"
	default:
		return "random adversarial starts"
	}
}

// ParseInitClass maps a class name (as printed by String) back to the
// class.
func ParseInitClass(s string) (InitClass, error) {
	for c, name := range initClassNames {
		if name == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("repro: unknown init class %q", s)
}

// MarshalJSON encodes the class by name.
func (c InitClass) MarshalJSON() ([]byte, error) {
	if _, ok := initClassNames[c]; !ok {
		return nil, fmt.Errorf("repro: cannot marshal %v", c)
	}
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes a class name.
func (c *InitClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseInitClass(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// Topology selects the interaction graph of a trial. The zero value defers
// to the protocol's native topology (a directed ring for the election
// protocols, an undirected ring for P_OR); a non-zero value is validated
// against it, so scenarios cannot silently run a protocol on a graph its
// analysis does not cover.
type Topology int

const (
	// TopologyDefault uses the protocol's native topology.
	TopologyDefault Topology = iota
	// TopologyDirectedRing is the directed ring of the election protocols.
	TopologyDirectedRing
	// TopologyUndirectedRing is the undirected ring of P_OR.
	TopologyUndirectedRing
)

var topologyNames = map[Topology]string{
	TopologyDefault:        "default",
	TopologyDirectedRing:   "directed-ring",
	TopologyUndirectedRing: "undirected-ring",
}

// String returns the topology name.
func (t Topology) String() string {
	if name, ok := topologyNames[t]; ok {
		return name
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// MarshalJSON encodes the topology by name.
func (t Topology) MarshalJSON() ([]byte, error) {
	if _, ok := topologyNames[t]; !ok {
		return nil, fmt.Errorf("repro: cannot marshal %v", t)
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a topology name.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for topo, name := range topologyNames {
		if name == s {
			*t = topo
			return nil
		}
	}
	return fmt.Errorf("repro: unknown topology %q", s)
}

// Fault is one burst of a mid-run fault-injection schedule: at step AtStep
// of the trial, Agents randomly chosen agents are overwritten with
// uniformly random states. Self-stabilization means the protocol must
// recover from every burst.
type Fault struct {
	// AtStep is the scheduler step at which the burst fires; bursts beyond
	// the step budget never fire.
	AtStep uint64 `json:"at_step"`
	// Agents is the number of randomly chosen agents to corrupt. Draws are
	// independent, so the same agent may be hit more than once.
	Agents int `json:"agents"`
}

// Budget is the step-budget policy of a trial. The zero value uses the
// protocol's default budget (the paper's w.h.p. bound with a generous
// constant).
type Budget struct {
	// MaxSteps, when non-zero, is the absolute per-trial step budget and
	// overrides Scale.
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// Scale, when non-zero, multiplies the protocol's default budget —
	// e.g. 0.1 for a deliberately tight budget in failure studies.
	Scale float64 `json:"scale,omitempty"`
}

// steps resolves the policy against a protocol's default budget at size n.
// A positive Scale small enough to truncate the product to zero resolves
// to 1, never 0: a 0-step budget would make every trial silently report
// non-convergence at step 0, which reads like an instant failure instead
// of a too-tight budget.
func (b Budget) steps(def uint64) uint64 {
	switch {
	case b.MaxSteps > 0:
		return b.MaxSteps
	case b.Scale > 0:
		product := b.Scale * float64(def)
		if product >= float64(math.MaxUint64) {
			// Saturate before converting: float-to-uint64 conversion of an
			// out-of-range value is implementation-specific in Go, so an
			// absurd scale would resolve to different budgets on different
			// architectures.
			return math.MaxUint64
		}
		scaled := uint64(product)
		if scaled == 0 {
			scaled = 1
		}
		return scaled
	default:
		return def
	}
}

// Scenario describes everything about a trial except the protocol and the
// ring size: the interaction topology, the adversarial initial
// configuration class, an optional mid-run fault-injection schedule, the
// step-budget policy, and the scheduler/ring-dynamics spec (biased arc
// distributions, eclipses, churn, stuck agents — see SchedulerSpec). The
// zero Scenario is the standard experiment: native topology, random
// adversarial start, no faults, default budget, uniform-random scheduler
// on a static ring.
type Scenario struct {
	Topology Topology       `json:"topology,omitempty"`
	Init     InitClass      `json:"init,omitempty"`
	Faults   []Fault        `json:"faults,omitempty"`
	Budget   Budget         `json:"budget,omitempty"`
	Sched    *SchedulerSpec `json:"scheduler,omitempty"`
	// MaxStates caps the interned execution layer's state interner for
	// this scenario's trials; a run needing more distinct states falls
	// back to the generic engine (bit-identically — the cap is a memory
	// knob, not a semantics one). 0 selects the engine default
	// (population.DefaultMaxStates); the ceiling is
	// population.MaxInternStates.
	MaxStates int `json:"max_states,omitempty"`
}

// Validate reports whether the scenario is well-formed independent of any
// protocol: non-negative fault sizes, and a budget scale that is a
// non-negative finite number (NaN and ±Inf would slip past a simple sign
// check and resolve to a meaningless budget). Scales that truncate the
// resolved budget to zero are clamped to a 1-step budget at resolution
// time (see Budget).
func (sc Scenario) Validate() error {
	for _, f := range sc.Faults {
		if f.Agents < 0 {
			return fmt.Errorf("repro: fault at step %d corrupts %d agents", f.AtStep, f.Agents)
		}
	}
	if sc.Budget.Scale < 0 || math.IsNaN(sc.Budget.Scale) || math.IsInf(sc.Budget.Scale, 0) {
		return fmt.Errorf("repro: invalid budget scale %v", sc.Budget.Scale)
	}
	if sc.MaxStates < 0 || sc.MaxStates > population.MaxInternStates {
		return fmt.Errorf("repro: max_states %d outside [0, %d]", sc.MaxStates, population.MaxInternStates)
	}
	return sc.Sched.Validate()
}

// MaxSteps resolves the scenario's budget policy for protocol p at ring
// size n (which must already be FixSize-adjusted).
func (sc Scenario) MaxSteps(p Protocol, n int) uint64 {
	return sc.Budget.steps(p.MaxSteps(n))
}

// sortedFaults returns the schedule in firing order without mutating the
// scenario.
func (sc Scenario) sortedFaults() []Fault {
	if len(sc.Faults) == 0 {
		return nil
	}
	out := make([]Fault, len(sc.Faults))
	copy(out, sc.Faults)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtStep < out[j].AtStep })
	return out
}
