package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata golden files")

// goldenReport is the fixed experiment behind the golden files: small
// enough to run in milliseconds, rich enough to cover missing cells (the
// capped [28] row), exponent fits and the scenario block.
func goldenReport(t *testing.T) *repro.Report {
	t.Helper()
	rep, err := repro.NewExperiment().
		ProtocolNames("yokota", "ppl").
		Sizes(8, 16).
		Trials(2).
		MaxSizeFor("[28] Yokota et al.", 8).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestReportGolden -update .` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestReportGoldenJSON pins the exact JSON artifact bytes — CI consumers
// and BENCH trajectories parse these.
func TestReportGoldenJSON(t *testing.T) {
	data, err := goldenReport(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", data)

	// The artifact must round-trip through the public types.
	var back repro.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Trials != 2 {
		t.Fatalf("round-tripped report %+v", back)
	}
}

// TestReportGoldenCSV pins the exact CSV artifact bytes.
func TestReportGoldenCSV(t *testing.T) {
	data, err := goldenReport(t).CSV()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.csv", data)

	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + one record per executed cell: yokota capped to n=8, ppl at
	// both sizes.
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "protocol,n,trials,failures,steps_mean") {
		t.Fatalf("CSV header: %s", lines[0])
	}
}

// failureReport is a report whose every trial fails: a 1-step budget
// cannot reach S_PL, so each cell has trials but zero converged ones.
func failureReport(t *testing.T) *repro.Report {
	t.Helper()
	rep, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8, 16).
		Trials(2).
		Scenario(repro.Scenario{Budget: repro.Budget{MaxSteps: 1}}).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReportGoldenFailureOnly pins the rendering of cells with zero
// converged trials: summaries are explicit nulls in JSON and empty fields
// in CSV — never stale zeros that read like measured values.
func TestReportGoldenFailureOnly(t *testing.T) {
	rep := failureReport(t)
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_failed.json", data)
	if !strings.Contains(string(data), `"mean": null`) {
		t.Fatalf("failure-only summary not null in JSON:\n%s", data)
	}
	var back repro.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if c := back.Rows[0].Cells[0]; c.Failures != 2 || c.Steps.Count != 0 || c.Steps.Mean != 0 {
		t.Fatalf("null summaries did not round-trip to zero values: %+v", c)
	}

	csvData, err := rep.CSV()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_failed.csv", csvData)
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if len(lines) != 3 {
		t.Fatalf("failure CSV:\n%s", csvData)
	}
	// protocol,n,trials,failures, then 7 empty statistic fields, then the
	// (empty) exponent.
	if !strings.Contains(lines[1], ",2,2,,,,,,,,") {
		t.Fatalf("failure CSV row carries non-empty statistics: %q", lines[1])
	}

	md := rep.Markdown()
	if !strings.Contains(md, "| — |") {
		t.Fatalf("failure-only cells must render as missing in markdown:\n%s", md)
	}
}

// TestReportMarkdownShape covers the rendered layout: heading per
// scenario, the escaped |Q| column, missing cells for the capped row, and
// the em-dash for an unfittable exponent.
func TestReportMarkdownShape(t *testing.T) {
	md := goldenReport(t).Markdown()
	for _, want := range []string{
		"### Mean convergence steps (random adversarial starts)",
		"### Table 1 reproduction",
		`\|Q\|(n=16)`,
		"| — |",
		"Trials per cell: 2.",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, " |Q|(") {
		t.Fatalf("unescaped |Q| header:\n%s", md)
	}
}
