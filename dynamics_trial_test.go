package repro

import (
	"context"
	"testing"

	"repro/internal/sched"
)

// TestEclipseDelaysThenRecovers is the subsystem's headline acceptance
// test: an eclipse window must demonstrably delay convergence past the
// uniform-scheduler hitting time and then let the protocol recover,
// with the recovery measured and exposed as observables.
func TestEclipseDelaysThenRecovers(t *testing.T) {
	p := PPL(0, 0)
	n, seed := 32, uint64(1)
	base, err := p.Trial(Scenario{}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged {
		t.Fatalf("baseline trial did not converge: %+v", base)
	}
	// Open a wide partition just before the baseline hitting time and
	// hold it well past it: convergence must land after the window.
	spec := &SchedulerSpec{
		Kind:     "eclipse",
		Start:    base.Steps / 2,
		Period:   1 << 40,
		Duration: base.Steps * 4,
		Arcs:     3 * n / 4,
	}
	probe := &RecordingProbe{}
	res, err := ProbeTrial(p, Scenario{Sched: spec}, n, seed, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("eclipsed trial did not converge: %+v", res)
	}
	close := spec.Start + spec.Duration
	if res.Steps <= close {
		t.Fatalf("eclipse did not delay convergence: hit at %d, window closed at %d", res.Steps, close)
	}
	rec := probe.Record()
	if w := rec.Observables["eclipse_windows"]; w != 1 {
		t.Fatalf("eclipse_windows = %v, want 1", w)
	}
	recovery, ok := rec.Observables["eclipse_recovery_steps"]
	if !ok {
		t.Fatalf("converged eclipsed trial has no eclipse_recovery_steps: %v", rec.Observables)
	}
	if want := float64(res.Steps - close); recovery != want {
		t.Fatalf("eclipse_recovery_steps = %v, want steps-after-close %v", recovery, want)
	}
}

// TestEclipsePhaseEventsMatchSchedule cross-checks the probe's
// sched_phase events against the Eclipse schedule computed directly: the
// boundary steps, epoch indices and eclipsed flags the trial streams
// must be exactly what the scheduler's own Phase reports.
func TestEclipsePhaseEventsMatchSchedule(t *testing.T) {
	p := PPL(0, 0)
	n := 16
	spec := &SchedulerSpec{Kind: "eclipse", Start: 50, Period: 700, Duration: 200, Arcs: 4}
	ec, err := sched.NewEclipse(n, spec.Start, spec.Period, spec.Duration, spec.Offset, spec.Arcs)
	if err != nil {
		t.Fatal(err)
	}
	probe := &captureProbe{}
	pp := p.(ProbedProtocol)
	if _, err := pp.ProbedTrial(Scenario{Sched: spec}, n, 2, probe); err != nil {
		t.Fatal(err)
	}
	phases := 0
	var prevEpoch int
	for _, ev := range probe.events {
		if ev.Kind != EventSchedPhase {
			continue
		}
		phases++
		epoch, eclipsed := ec.Phase(ev.Step)
		if ev.Epoch != epoch || ev.Eclipsed != eclipsed {
			t.Fatalf("event at step %d reports epoch %d eclipsed %v; schedule says %d, %v",
				ev.Step, ev.Epoch, ev.Eclipsed, epoch, eclipsed)
		}
		if ev.Epoch != prevEpoch+1 {
			t.Fatalf("epoch jumped from %d to %d at step %d", prevEpoch, ev.Epoch, ev.Step)
		}
		prevEpoch = ev.Epoch
	}
	if phases == 0 {
		t.Fatal("trial streamed no sched_phase events")
	}
}

// TestChurnObservablesMatchEventStream runs a churn trial and pins the
// record observables to the typed event stream: every churn event must
// be streamed with its live count, and the aggregate counters must agree
// with the per-event removals and insertions.
func TestChurnObservablesMatchEventStream(t *testing.T) {
	p := PPL(0, 0)
	n := 32
	spec := &SchedulerSpec{Churn: []ChurnEvent{
		{AtStep: 1000, Remove: 4},
		{AtStep: 3000, Insert: 2},
		{AtStep: 5000, Remove: 1, Insert: 3},
	}}
	probe := &captureProbe{}
	rec := &RecordingProbe{}
	pp := p.(ProbedProtocol)
	res, err := pp.ProbedTrial(Scenario{Sched: spec}, n, 5, Probes(probe, rec))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("churn trial did not converge: %+v", res)
	}
	var events, removed, inserted int
	live, liveMin := n, n
	for _, ev := range probe.events {
		if ev.Kind != EventChurn {
			continue
		}
		events++
		removed += ev.Removed
		inserted += ev.Inserted
		live += ev.Inserted - ev.Removed
		if ev.Live != live {
			t.Fatalf("churn event at step %d reports %d live agents, replay says %d", ev.Step, ev.Live, live)
		}
		if live < liveMin {
			liveMin = live
		}
	}
	if events != 3 || removed != 5 || inserted != 5 {
		t.Fatalf("event stream saw %d churn events (-%d/+%d), want 3 (-5/+5)", events, removed, inserted)
	}
	obs := rec.Record().Observables
	for key, want := range map[string]float64{
		"churn_events":    float64(events),
		"churn_removed":   float64(removed),
		"churn_inserted":  float64(inserted),
		"live_agents_min": float64(liveMin),
	} {
		if got := obs[key]; got != want {
			t.Fatalf("%s = %v, want %v", key, got, want)
		}
	}
}

// TestChurnRejectedByFixedSizeProtocols pins the validation boundary:
// protocols whose construction is tied to a fixed ring size must refuse
// churn scenarios up front instead of running them on a wrong-sized
// ring.
func TestChurnRejectedByFixedSizeProtocols(t *testing.T) {
	sc := Scenario{Sched: &SchedulerSpec{Churn: []ChurnEvent{{AtStep: 100, Remove: 1}}}}
	for _, name := range []string{"orient", "fj", "chenchen"} {
		p, err := NewProtocol(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(sc); err == nil {
			t.Fatalf("%s accepted a churn scenario", name)
		}
	}
	for _, name := range []string{"ppl", "yokota", "angluin"} {
		p, err := NewProtocol(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(sc); err != nil {
			t.Fatalf("%s rejected a churn scenario: %v", name, err)
		}
	}
	if _, err := RunBenchmark("ppl", 16, 1, sc, BenchTracked, 0); err == nil {
		t.Fatal("RunBenchmark accepted a churn scenario")
	}
}

// TestAdversarialTrialsRaceFree drives concurrent trials with per-trial
// scheduler state — alias tables, eclipse phase tracking, churn
// re-splicing, frozen masks — through the experiment worker pool. Under
// -race this pins the subsystem's concurrency contract: schedulers are
// per-engine, never shared.
func TestAdversarialTrialsRaceFree(t *testing.T) {
	scenarios := []Scenario{
		{Sched: &SchedulerSpec{Kind: "biased", Family: "hotspot", HotArcs: 4, Weight: 8}},
		{Sched: &SchedulerSpec{Kind: "eclipse", Start: 1, Period: 1 << 30, Duration: 1500, Arcs: 4}},
		{Sched: &SchedulerSpec{
			Churn: []ChurnEvent{{AtStep: 500, Remove: 2}, {AtStep: 1500, Insert: 2}},
			Stuck: 1,
		}, Budget: Budget{Scale: 0.05}},
	}
	for _, sc := range scenarios {
		rep, err := NewExperiment().
			ProtocolNames("ppl", "yokota", "angluin").
			Sizes(16).
			Trials(6).
			Scenario(sc).
			Workers(4).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != 3 {
			t.Fatalf("experiment produced %d rows, want 3", len(rep.Rows))
		}
	}
}
